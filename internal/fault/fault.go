// Package fault is a zero-dependency, deterministic fault-injection
// layer. Production code declares named injection sites (a page write,
// a B+-tree split, a background build step) and consults an Injector at
// each one; tests arm the injector with a seeded schedule and replay
// workloads under it. Two properties make the layer usable everywhere,
// including hot paths:
//
//   - Determinism. Each site draws from its own splitmix64 stream,
//     seeded from (injector seed, site name), and fires on its own hit
//     counter. A sequential workload replayed with the same seed sees
//     exactly the same faults at exactly the same operations, so a
//     failing chaos seed reproduces with one environment variable.
//
//   - An inert fast path. A nil *Injector is a valid receiver, and a
//     disarmed injector answers Hit with a single atomic load. Sites
//     can therefore stay compiled into release binaries: the disabled
//     cost is one predictable branch (see BENCH_fault.json).
//
// Faults are errors, not panics: every site returns *Error and the
// surrounding layer is responsible for degrading gracefully — rolling
// back partial mutations, aborting cleanly, or retrying transient
// failures. The chaos suite in internal/fault/chaostest locks that
// contract in.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Site names one injection point. Sites are dot-separated, layer-first,
// so schedules can target a layer by prefix.
type Site string

// The injection sites threaded through the engine.
const (
	// PageRead fires on executor read paths: heap scans, index scans,
	// index seeks, index-nested-loop lookups. Reads mutate nothing, so a
	// read fault aborts the statement with no state to roll back.
	PageRead Site = "storage.page_read"
	// PageWrite fires at the head of storage DML (insert/delete/update),
	// before any heap or index structure is touched.
	PageWrite Site = "storage.page_write"
	// PageAlloc fires when a structure would allocate: on every B+-tree
	// insert (node/page allocation) and at the head of index builds and
	// restarts. Checked before mutation, so a failed allocation leaves
	// the structure exactly as it was.
	PageAlloc Site = "storage.page_alloc"
	// BTreeSplit fires when a leaf insert would split a full page.
	// Checked before the split, so the tree is never left mid-split.
	BTreeSplit Site = "storage.btree_split"
	// BuildStep fires per row while a background build constructs its
	// tree from the snapshot (mid-snapshot failure).
	BuildStep Site = "storage.build_step"
	// BuildFinish fires while FinishBuild replays the DML delta into the
	// built tree (mid-delta failure), before the index is published.
	BuildFinish Site = "storage.build_finish"
	// ExecStmt fires once per statement execution attempt in the engine,
	// between planning and execution. Typically planned Transient, to
	// exercise the engine's bounded retry-with-backoff.
	ExecStmt Site = "engine.exec"
	// WALAppend fires at the head of a WAL batch append, before any byte
	// reaches the log. A fired append fails the committing statement, whose
	// in-memory effects the executor then rolls back.
	WALAppend Site = "wal.append"
	// WALFsync fires when the WAL would fsync. A fired fsync discards the
	// unflushed log tail (the writer truncates back to the last durable
	// offset) and fails every statement waiting on that flush.
	WALFsync Site = "wal.fsync"
)

// Sites lists every site the engine declares, for schedule builders.
var Sites = []Site{PageRead, PageWrite, PageAlloc, BTreeSplit, BuildStep, BuildFinish, ExecStmt, WALAppend, WALFsync}

// Error is the failure returned by a fired injection site.
type Error struct {
	Site Site
	// Hit is the 1-based hit count at the site when it fired.
	Hit int64
	// Transient marks faults the engine may retry (with backoff); a
	// permanent fault fails the operation immediately.
	Transient bool
}

func (e *Error) Error() string {
	kind := "permanent"
	if e.Transient {
		kind = "transient"
	}
	return fmt.Sprintf("fault: injected %s failure at %s (hit %d)", kind, e.Site, e.Hit)
}

// Is reports whether err is (or wraps) an injected fault.
func Is(err error) bool {
	var fe *Error
	return errors.As(err, &fe)
}

// IsTransient reports whether err is an injected fault marked transient
// — the engine's cue to retry with backoff.
func IsTransient(err error) bool {
	var fe *Error
	return errors.As(err, &fe) && fe.Transient
}

// Rule schedules faults at one site.
type Rule struct {
	// Prob is the firing probability per hit, in [0, 1].
	Prob float64
	// After skips the first After hits entirely (the draw is not even
	// made), so a rule can target steady state. With Prob 1 and Count 1
	// it pins the fault to exactly hit After+1.
	After int64
	// Count caps the number of fires; 0 means unlimited.
	Count int64
	// Transient marks the produced errors retryable.
	Transient bool
}

// siteState is one site's schedule plus its deterministic draw state.
type siteState struct {
	rule    Rule
	prng    atomic.Uint64 // splitmix64 state; Add(gamma) then mix per draw
	hits    atomic.Int64
	fired   atomic.Int64
	keySeed uint64 // immutable per-site seed for HitKeyed draws
	// Keyed traffic counts separately so the unkeyed ordinal stream
	// (hits, and through it After/Count) stays independent of how many
	// keyed draws happen or in what order workers make them.
	khits  atomic.Int64
	kfired atomic.Int64
}

// Injector decides, per site hit, whether to fail. The zero of use is a
// nil pointer: every method is nil-safe and a nil injector never fires,
// so production structs hold a plain *Injector field with no setup.
type Injector struct {
	armed atomic.Bool
	seed  uint64
	mu    sync.Mutex                          // serializes Plan
	sites atomic.Pointer[map[Site]*siteState] // copy-on-write
}

// New returns a disarmed injector whose site streams derive from seed.
func New(seed uint64) *Injector {
	i := &Injector{seed: seed}
	m := map[Site]*siteState{}
	i.sites.Store(&m)
	return i
}

// Plan installs (or replaces) the rule for a site. Planning re-seeds the
// site's stream from the injector seed and the site name, so the
// schedule is a pure function of (seed, rules, hit sequence).
func (i *Injector) Plan(site Site, r Rule) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	old := *i.sites.Load()
	next := make(map[Site]*siteState, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	st := &siteState{rule: r, keySeed: splitmix64(i.seed ^ hashSite(site) ^ 0xA5A5A5A5A5A5A5A5)}
	st.prng.Store(splitmix64(i.seed ^ hashSite(site)))
	next[site] = st
	i.sites.Store(&next)
	return i
}

// Arm enables fault firing.
func (i *Injector) Arm() { i.armed.Store(true) }

// Disarm disables fault firing; schedules and counters are kept.
func (i *Injector) Disarm() {
	if i != nil {
		i.armed.Store(false)
	}
}

// Armed reports whether the injector is firing.
func (i *Injector) Armed() bool { return i != nil && i.armed.Load() }

// Hit consults the site's schedule and returns an *Error when the fault
// fires, nil otherwise. The disabled path — nil injector, disarmed, or
// no rule for the site — costs at most one atomic load plus a map probe.
func (i *Injector) Hit(site Site) error {
	if i == nil || !i.armed.Load() {
		return nil
	}
	s := (*i.sites.Load())[site]
	if s == nil {
		return nil
	}
	n := s.hits.Add(1)
	r := s.rule
	if n <= r.After {
		return nil
	}
	if r.Count > 0 && s.fired.Load() >= r.Count {
		return nil
	}
	if r.Prob < 1 {
		// 53-bit uniform draw in [0, 1).
		z := splitmix64(s.prng.Add(0x9E3779B97F4A7C15))
		if float64(z>>11)/(1<<53) >= r.Prob {
			return nil
		}
	}
	s.fired.Add(1)
	return &Error{Site: site, Hit: n, Transient: r.Transient}
}

// HitOrd consults the site like Hit but also returns the 1-based hit
// ordinal that was consumed, whether or not the fault fired. Callers use
// the ordinal as a stable identity for the operation (e.g. the scan a
// statement performs), typically to derive HitKeyed keys for its
// sub-operations.
func (i *Injector) HitOrd(site Site) (int64, error) {
	if i == nil || !i.armed.Load() {
		return 0, nil
	}
	s := (*i.sites.Load())[site]
	if s == nil {
		return 0, nil
	}
	// Re-implements Hit so the ordinal and the decision come from the
	// same counter increment.
	n := s.hits.Add(1)
	r := s.rule
	if n <= r.After {
		return n, nil
	}
	if r.Count > 0 && s.fired.Load() >= r.Count {
		return n, nil
	}
	if r.Prob < 1 {
		z := splitmix64(s.prng.Add(0x9E3779B97F4A7C15))
		if float64(z>>11)/(1<<53) >= r.Prob {
			return n, nil
		}
	}
	s.fired.Add(1)
	return n, &Error{Site: site, Hit: n, Transient: r.Transient}
}

// HitKeyed consults the site's schedule for a keyed operation — one
// whose identity is a stable value (a morsel id, a page range) rather
// than an arrival ordinal. The per-key Prob decision is a pure function
// of (injector seed, site, key): concurrent workers hitting the same
// keys in any interleaving observe exactly the same draws, which is what
// keeps a seeded chaos run reproducible under parallel execution.
//
// After and Count keep their ordinal meaning, enforced against the keyed
// counters: the first After keyed draws at the site pass, and at most
// Count keyed faults fire (budgeted atomically, separate from the
// unkeyed stream so neither perturbs the other). A rule like
// {Prob: 1, Count: 1} therefore injects exactly one failure on the keyed
// path too, not one per draw. Note that which arrivals consume an
// After/Count budget depends on worker interleaving — only Prob-and-
// Transient-only rules (the chaos suite's shape) are fully
// interleaving-independent. Error.Hit carries the key.
func (i *Injector) HitKeyed(site Site, key uint64) error {
	if i == nil || !i.armed.Load() {
		return nil
	}
	s := (*i.sites.Load())[site]
	if s == nil {
		return nil
	}
	r := s.rule
	n := s.khits.Add(1)
	if n <= r.After {
		return nil
	}
	if r.Prob <= 0 {
		return nil
	}
	if r.Prob < 1 {
		z := splitmix64(s.keySeed ^ splitmix64(key))
		if float64(z>>11)/(1<<53) >= r.Prob {
			return nil
		}
	}
	if r.Count > 0 {
		// Claim one unit of the keyed fire budget; draws that lose the
		// race or arrive after exhaustion pass.
		for {
			f := s.kfired.Load()
			if f >= r.Count {
				return nil
			}
			if s.kfired.CompareAndSwap(f, f+1) {
				break
			}
		}
	} else {
		s.kfired.Add(1)
	}
	return &Error{Site: site, Hit: int64(key), Transient: r.Transient}
}

// SiteStats is one site's observed traffic.
type SiteStats struct {
	Hits  int64
	Fired int64
}

// Stats returns per-site hit and fire counts for every planned site.
func (i *Injector) Stats() map[Site]SiteStats {
	out := map[Site]SiteStats{}
	if i == nil {
		return out
	}
	for site, s := range *i.sites.Load() {
		out[site] = SiteStats{
			Hits:  s.hits.Load() + s.khits.Load(),
			Fired: s.fired.Load() + s.kfired.Load(),
		}
	}
	return out
}

// FiredTotal returns the total number of faults fired across all sites.
func (i *Injector) FiredTotal() int64 {
	var total int64
	for _, s := range i.Stats() {
		total += s.Fired
	}
	return total
}

// String renders the schedule and counters, for failure logs.
func (i *Injector) String() string {
	if i == nil {
		return "fault.Injector(nil)"
	}
	m := *i.sites.Load()
	sites := make([]string, 0, len(m))
	for site := range m {
		sites = append(sites, string(site))
	}
	sort.Strings(sites)
	out := fmt.Sprintf("fault.Injector(seed=%d armed=%v", i.seed, i.Armed())
	for _, name := range sites {
		s := m[Site(name)]
		out += fmt.Sprintf(" %s{p=%g after=%d count=%d hits=%d fired=%d keyed=%d/%d}",
			name, s.rule.Prob, s.rule.After, s.rule.Count,
			s.hits.Load(), s.fired.Load(), s.kfired.Load(), s.khits.Load())
	}
	return out + ")"
}

// splitmix64 is the SplitMix64 output mix — a full-avalanche 64-bit
// permutation, used both to derive per-site seeds and as the per-draw
// generator over a Weyl sequence.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// hashSite folds a site name into 64 bits (FNV-1a).
func hashSite(s Site) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
