package datum

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KNull: "NULL", KInt: "INT", KFloat: "FLOAT",
		KString: "VARCHAR", KDate: "DATE", KBool: "BOOL",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestCompareBasics(t *testing.T) {
	tests := []struct {
		a, b Datum
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewFloat(1.5), NewInt(2), -1},
		{NewInt(2), NewFloat(1.5), 1},
		{NewFloat(2), NewInt(2), 0},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{Null, NewInt(-100), -1},
		{NewInt(-100), Null, 1},
		{Null, Null, 0},
		{NewDate(10), NewDate(20), -1},
		{NewBool(false), NewBool(true), -1},
		{NewDate(5), NewInt(5), 0}, // numeric cross-kind
	}
	for _, tc := range tests {
		if got := tc.a.Compare(tc.b); got != tc.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCompareAntisymmetry(t *testing.T) {
	f := func(a, b int64) bool {
		da, db := NewInt(a), NewInt(b)
		return da.Compare(db) == -db.Compare(da)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randDatum(r *rand.Rand) Datum {
	switch r.Intn(5) {
	case 0:
		return Null
	case 1:
		return NewInt(int64(r.Intn(20) - 10))
	case 2:
		return NewFloat(float64(r.Intn(20)-10) / 2)
	case 3:
		return NewString(string(rune('a' + r.Intn(5))))
	default:
		return NewDate(int64(r.Intn(10)))
	}
}

// TestCompareTotalOrder checks transitivity/consistency by sorting random
// datum slices and verifying the result is totally ordered.
func TestCompareTotalOrder(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		ds := make([]Datum, 30)
		for i := range ds {
			ds[i] = randDatum(r)
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i].Compare(ds[j]) < 0 })
		for i := 1; i < len(ds); i++ {
			if ds[i-1].Compare(ds[i]) > 0 {
				t.Fatalf("iter %d: not sorted at %d: %v > %v", iter, i, ds[i-1], ds[i])
			}
		}
	}
}

func TestHashEqualImpliesEqualHash(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a, b := randDatum(r), randDatum(r)
		if a.Equal(b) && a.Hash() != b.Hash() {
			t.Fatalf("equal datums with different hashes: %v, %v", a, b)
		}
	}
	// Cross-kind numeric equality must collide.
	if NewInt(5).Hash() != NewFloat(5).Hash() {
		t.Error("NewInt(5) and NewFloat(5) should hash equally")
	}
}

func TestArith(t *testing.T) {
	mustI := func(d Datum, err error) int64 {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return d.Int()
	}
	mustF := func(d Datum, err error) float64 {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return d.Float()
	}
	if got := mustI(NewInt(3).Add(NewInt(4))); got != 7 {
		t.Errorf("3+4 = %d", got)
	}
	if got := mustI(NewInt(10).Div(NewInt(3))); got != 3 {
		t.Errorf("10/3 = %d", got)
	}
	if got := mustF(NewFloat(1).Div(NewInt(4))); got != 0.25 {
		t.Errorf("1.0/4 = %g", got)
	}
	if got := mustI(NewInt(5).Mul(NewInt(6))); got != 30 {
		t.Errorf("5*6 = %d", got)
	}
	if got := mustI(NewInt(5).Sub(NewInt(6))); got != -1 {
		t.Errorf("5-6 = %d", got)
	}
	if _, err := NewInt(1).Div(NewInt(0)); err == nil {
		t.Error("integer division by zero should error")
	}
	if _, err := NewFloat(1).Div(NewFloat(0)); err == nil {
		t.Error("float division by zero should error")
	}
	if d, err := Null.Add(NewInt(1)); err != nil || !d.IsNull() {
		t.Errorf("NULL+1 = (%v, %v), want NULL", d, err)
	}
	if _, err := NewString("x").Add(NewInt(1)); err == nil {
		t.Error("string arithmetic should error")
	}
}

func TestNaNOrdering(t *testing.T) {
	nan := NewFloat(math.NaN())
	if nan.Compare(NewFloat(0)) != -1 {
		t.Error("NaN should sort below numbers")
	}
	if nan.Compare(nan) != 0 {
		t.Error("NaN should compare equal to itself")
	}
}

func TestRowCompareAndClone(t *testing.T) {
	a := Row{NewInt(1), NewString("x")}
	b := Row{NewInt(1), NewString("y")}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Error("row comparison broken")
	}
	short := Row{NewInt(1)}
	if short.Compare(a) != -1 {
		t.Error("shorter prefix row should sort first")
	}
	c := a.Clone()
	c[0] = NewInt(99)
	if a[0].Int() != 1 {
		t.Error("Clone did not copy")
	}
}

func TestRowHashConsistency(t *testing.T) {
	a := Row{NewInt(1), NewString("x")}
	b := Row{NewInt(1), NewString("x")}
	if a.Hash() != b.Hash() {
		t.Error("equal rows must hash equally")
	}
	c := Row{NewString("x"), NewInt(1)}
	if a.Hash() == c.Hash() {
		t.Error("order should influence row hash (almost surely)")
	}
}

func TestWidths(t *testing.T) {
	if NewInt(1).Width() != 8 || Null.Width() != 1 || NewString("abc").Width() != 5 {
		t.Error("unexpected widths")
	}
	r := Row{NewInt(1), NewString("abc")}
	if r.Width() != 13 {
		t.Errorf("row width = %d, want 13", r.Width())
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		d    Datum
		want string
	}{
		{NewInt(42), "42"},
		{NewString("hi"), "'hi'"},
		{Null, "NULL"},
		{NewBool(true), "TRUE"},
		{NewBool(false), "FALSE"},
	}
	for _, tc := range cases {
		if got := tc.d.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestPanicsOnWrongKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Str() on int should panic")
		}
	}()
	_ = NewInt(1).Str()
}
