package datum

// BatchRows is the target row count per executor batch: large enough to
// amortize per-batch costs (context ticks, fault draws, channel sends),
// small enough to keep intermediate state cache-resident.
const BatchRows = 1024

// slabDatums sizes the backing arena slabs Alloc carves rows from.
const slabDatums = 4096

// Batch is a resizable run of rows backed by a datum arena. Rows built
// with Alloc share large slabs instead of one heap allocation per row;
// rows appended with Append keep whatever backing they arrived with.
// When a slab is exhausted a new one is allocated — previously carved
// rows keep pointing into the old slab, so references handed out by
// Alloc stay valid for the life of the batch.
type Batch struct {
	rows []Row
	slab []Datum
}

// NewBatch returns an empty batch with row capacity hint n.
func NewBatch(n int) *Batch {
	if n <= 0 {
		n = BatchRows
	}
	return &Batch{rows: make([]Row, 0, n)}
}

// Len reports the number of rows in the batch.
func (b *Batch) Len() int { return len(b.rows) }

// Row returns the i'th row.
func (b *Batch) Row(i int) Row { return b.rows[i] }

// Rows exposes the underlying row slice (valid until Reset).
func (b *Batch) Rows() []Row { return b.rows }

// Append adds an existing row to the batch without copying it.
func (b *Batch) Append(r Row) { b.rows = append(b.rows, r) }

// Alloc appends a zeroed row of width n carved from the batch arena and
// returns it for the caller to fill.
func (b *Batch) Alloc(n int) Row {
	if len(b.slab)+n > cap(b.slab) {
		sz := slabDatums
		if n > sz {
			sz = n
		}
		b.slab = make([]Datum, 0, sz)
	}
	lo := len(b.slab)
	// Grow len only — the slab must keep its capacity so later Allocs
	// carve from the same backing array. The returned row is capped so an
	// append to it cannot alias the next carved row.
	b.slab = b.slab[:lo+n]
	r := Row(b.slab[lo : lo+n : lo+n])
	for i := range r {
		r[i] = Datum{}
	}
	b.rows = append(b.rows, r)
	return r
}

// Reset empties the batch, retaining row capacity and the current slab
// tail for reuse. Rows previously returned by Alloc or Rows must not be
// used after Reset.
func (b *Batch) Reset() {
	b.rows = b.rows[:0]
	// Keep the slab: Alloc re-carves from its tail, and full slabs are
	// replaced on demand. Rows handed out before Reset are invalidated
	// by contract, so rewinding would alias them; allocate forward only.
}
