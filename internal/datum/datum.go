// Package datum implements the typed value layer shared by the storage
// engine, executor, optimizer and statistics subsystems. A Datum is an
// immutable scalar: integer, float, string, date (days since epoch), or
// NULL. Comparison follows SQL semantics except that NULL sorts first and
// compares equal to itself, which gives Datum a total order so it can be
// used as a B+-tree key component.
package datum

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
)

// Kind enumerates the runtime types a Datum can take.
type Kind uint8

// The supported datum kinds.
const (
	KNull Kind = iota
	KInt
	KFloat
	KString
	KDate // days since 1970-01-01, stored as int64
	KBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KNull:
		return "NULL"
	case KInt:
		return "INT"
	case KFloat:
		return "FLOAT"
	case KString:
		return "VARCHAR"
	case KDate:
		return "DATE"
	case KBool:
		return "BOOL"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Datum is a single immutable scalar value.
type Datum struct {
	kind Kind
	i    int64 // KInt, KDate, KBool (0/1)
	f    float64
	s    string
}

// Null is the SQL NULL value.
var Null = Datum{kind: KNull}

// NewInt returns an integer datum.
func NewInt(v int64) Datum { return Datum{kind: KInt, i: v} }

// NewFloat returns a float datum.
func NewFloat(v float64) Datum { return Datum{kind: KFloat, f: v} }

// NewString returns a string datum.
func NewString(v string) Datum { return Datum{kind: KString, s: v} }

// NewDate returns a date datum holding days since the epoch.
func NewDate(days int64) Datum { return Datum{kind: KDate, i: days} }

// NewBool returns a boolean datum.
func NewBool(v bool) Datum {
	var i int64
	if v {
		i = 1
	}
	return Datum{kind: KBool, i: i}
}

// Kind reports the datum's runtime type.
func (d Datum) Kind() Kind { return d.kind }

// IsNull reports whether the datum is SQL NULL.
func (d Datum) IsNull() bool { return d.kind == KNull }

// Int returns the integer value; it panics on other kinds.
func (d Datum) Int() int64 {
	if d.kind != KInt && d.kind != KDate && d.kind != KBool {
		panic(fmt.Sprintf("datum: Int() on %s", d.kind))
	}
	return d.i
}

// Float returns the float value, converting integers.
func (d Datum) Float() float64 {
	switch d.kind {
	case KFloat:
		return d.f
	case KInt, KDate, KBool:
		return float64(d.i)
	}
	panic(fmt.Sprintf("datum: Float() on %s", d.kind))
}

// Str returns the string value; it panics on other kinds.
func (d Datum) Str() string {
	if d.kind != KString {
		panic(fmt.Sprintf("datum: Str() on %s", d.kind))
	}
	return d.s
}

// Bool returns the boolean value; it panics on other kinds.
func (d Datum) Bool() bool {
	if d.kind != KBool {
		panic(fmt.Sprintf("datum: Bool() on %s", d.kind))
	}
	return d.i != 0
}

// numericKinds reports whether both datums can be compared numerically.
func numericKinds(a, b Kind) bool {
	num := func(k Kind) bool { return k == KInt || k == KFloat || k == KDate || k == KBool }
	return num(a) && num(b)
}

// Compare returns -1, 0 or +1. NULL sorts before every non-NULL value and
// equal to itself, making the order total. Numeric kinds compare by value
// across int/float/date; mixed non-numeric kinds compare by kind tag so
// the order stays total (such comparisons should not arise from well-typed
// queries).
func (d Datum) Compare(o Datum) int {
	if d.kind == KNull || o.kind == KNull {
		switch {
		case d.kind == KNull && o.kind == KNull:
			return 0
		case d.kind == KNull:
			return -1
		default:
			return 1
		}
	}
	if d.kind == o.kind {
		switch d.kind {
		case KInt, KDate, KBool:
			switch {
			case d.i < o.i:
				return -1
			case d.i > o.i:
				return 1
			}
			return 0
		case KFloat:
			return cmpFloat(d.f, o.f)
		case KString:
			switch {
			case d.s < o.s:
				return -1
			case d.s > o.s:
				return 1
			}
			return 0
		}
	}
	if numericKinds(d.kind, o.kind) {
		return cmpFloat(d.Float(), o.Float())
	}
	// Total-order fallback across incompatible kinds: every numeric sorts
	// before every string, keeping the order transitive.
	switch {
	case classRank(d.kind) < classRank(o.kind):
		return -1
	case classRank(d.kind) > classRank(o.kind):
		return 1
	}
	return 0
}

// classRank groups kinds into comparison classes: numerics (0) before
// strings (1). NULL is handled before this is consulted.
func classRank(k Kind) int {
	if k == KString {
		return 1
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case math.IsNaN(a) && !math.IsNaN(b):
		return -1
	case !math.IsNaN(a) && math.IsNaN(b):
		return 1
	}
	return 0
}

// Equal reports whether two datums compare equal.
func (d Datum) Equal(o Datum) bool { return d.Compare(o) == 0 }

// Hash returns a stable hash of the datum, suitable for hash joins and
// grouping. Numeric kinds hash by their float64 value so that equal
// cross-kind numerics collide.
func (d Datum) Hash() uint64 {
	h := fnv.New64a()
	switch d.kind {
	case KNull:
		h.Write([]byte{0})
	case KString:
		h.Write([]byte{1})
		h.Write([]byte(d.s))
	default:
		h.Write([]byte{2})
		f := d.Float()
		var buf [8]byte
		bits := math.Float64bits(f)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// String renders the datum for plan/debug output.
func (d Datum) String() string {
	switch d.kind {
	case KNull:
		return "NULL"
	case KInt:
		return strconv.FormatInt(d.i, 10)
	case KFloat:
		return strconv.FormatFloat(d.f, 'g', -1, 64)
	case KString:
		return "'" + d.s + "'"
	case KDate:
		return fmt.Sprintf("DATE(%d)", d.i)
	case KBool:
		if d.i != 0 {
			return "TRUE"
		}
		return "FALSE"
	}
	return "?"
}

// AppendKey appends the exact bytes of d.String() to buf. Grouping and
// join keys are rendered from datum strings; AppendKey produces the
// identical bytes without the fmt/Builder overhead, so the vectorized
// key-rendering path groups exactly like the scalar one (int 5 and
// float 5.0 both render "5" and share a group, as before).
func (d Datum) AppendKey(buf []byte) []byte {
	switch d.kind {
	case KNull:
		return append(buf, "NULL"...)
	case KInt:
		return strconv.AppendInt(buf, d.i, 10)
	case KFloat:
		return strconv.AppendFloat(buf, d.f, 'g', -1, 64)
	case KString:
		buf = append(buf, '\'')
		buf = append(buf, d.s...)
		return append(buf, '\'')
	case KDate:
		buf = append(buf, "DATE("...)
		buf = strconv.AppendInt(buf, d.i, 10)
		return append(buf, ')')
	case KBool:
		if d.i != 0 {
			return append(buf, "TRUE"...)
		}
		return append(buf, "FALSE"...)
	}
	return append(buf, '?')
}

// Width returns the number of bytes the datum occupies in the storage
// layer's size accounting (not a serialized format; the engine is
// in-memory but sizes drive the paper's storage constraints).
func (d Datum) Width() int {
	switch d.kind {
	case KNull:
		return 1
	case KInt, KDate, KFloat:
		return 8
	case KBool:
		return 1
	case KString:
		return 2 + len(d.s)
	}
	return 1
}

// Add returns d + o for numeric datums; NULL propagates.
func (d Datum) Add(o Datum) (Datum, error) { return arith(d, o, "+") }

// Sub returns d - o for numeric datums; NULL propagates.
func (d Datum) Sub(o Datum) (Datum, error) { return arith(d, o, "-") }

// Mul returns d * o for numeric datums; NULL propagates.
func (d Datum) Mul(o Datum) (Datum, error) { return arith(d, o, "*") }

// Div returns d / o for numeric datums; NULL propagates; division by zero
// yields an error.
func (d Datum) Div(o Datum) (Datum, error) { return arith(d, o, "/") }

func arith(a, b Datum, op string) (Datum, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if !numericKinds(a.kind, b.kind) {
		return Null, fmt.Errorf("datum: %s %s %s: non-numeric operands", a.kind, op, b.kind)
	}
	if a.kind == KInt && b.kind == KInt {
		switch op {
		case "+":
			return NewInt(a.i + b.i), nil
		case "-":
			return NewInt(a.i - b.i), nil
		case "*":
			return NewInt(a.i * b.i), nil
		case "/":
			if b.i == 0 {
				return Null, fmt.Errorf("datum: integer division by zero")
			}
			return NewInt(a.i / b.i), nil
		}
	}
	x, y := a.Float(), b.Float()
	switch op {
	case "+":
		return NewFloat(x + y), nil
	case "-":
		return NewFloat(x - y), nil
	case "*":
		return NewFloat(x * y), nil
	case "/":
		if y == 0 {
			return Null, fmt.Errorf("datum: division by zero")
		}
		return NewFloat(x / y), nil
	}
	return Null, fmt.Errorf("datum: unknown operator %q", op)
}

// Row is a tuple of datums. Rows are value-like: Clone before mutating a
// row that may be shared.
type Row []Datum

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	c := make(Row, len(r))
	copy(c, r)
	return c
}

// Width returns the accounted byte width of the row.
func (r Row) Width() int {
	w := 0
	for _, d := range r {
		w += d.Width()
	}
	return w
}

// Compare compares two rows lexicographically; shorter rows sort first on
// a tie of the common prefix.
func (r Row) Compare(o Row) int {
	n := len(r)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if c := r[i].Compare(o[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(r) < len(o):
		return -1
	case len(r) > len(o):
		return 1
	}
	return 0
}

// Hash returns a combined hash of the row's datums.
func (r Row) Hash() uint64 {
	h := uint64(1469598103934665603)
	for _, d := range r {
		h ^= d.Hash()
		h *= 1099511628211
	}
	return h
}

// String renders the row for debug output.
func (r Row) String() string {
	s := "("
	for i, d := range r {
		if i > 0 {
			s += ", "
		}
		s += d.String()
	}
	return s + ")"
}
