package datum

import "testing"

func TestBatchAllocCarvesValidRows(t *testing.T) {
	b := NewBatch(0)
	var rows []Row
	// Cross several slab boundaries to prove old rows survive new slabs.
	for i := 0; i < 3*slabDatums; i++ {
		r := b.Alloc(3)
		r[0] = NewInt(int64(i))
		r[1] = NewString("x")
		r[2] = NewFloat(float64(i) / 2)
		rows = append(rows, r)
	}
	if b.Len() != 3*slabDatums {
		t.Fatalf("Len = %d, want %d", b.Len(), 3*slabDatums)
	}
	for i, r := range rows {
		if r[0].Int() != int64(i) {
			t.Fatalf("row %d corrupted after slab growth: got %v", i, r[0])
		}
		if got := b.Row(i); &got[0] != &r[0] {
			t.Fatalf("Row(%d) does not alias the allocated row", i)
		}
	}
}

// TestBatchAllocAmortizesSlab pins the arena property: consecutive small
// Allocs carve from one shared slab (len grows, cap stays) instead of
// allocating a fresh slab per row, and the capped row boundary keeps an
// append to one row from clobbering its neighbor.
func TestBatchAllocAmortizesSlab(t *testing.T) {
	b := NewBatch(0)
	r1 := b.Alloc(3)
	if cap(b.slab) != slabDatums {
		t.Fatalf("slab cap = %d after Alloc, want %d (cap collapsed to len)", cap(b.slab), slabDatums)
	}
	r2 := b.Alloc(3)
	if len(b.slab) != 6 || cap(b.slab) != slabDatums {
		t.Fatalf("slab len/cap = %d/%d after two Allocs, want 6/%d", len(b.slab), cap(b.slab), slabDatums)
	}
	if &r2[0] != &b.slab[3] {
		t.Fatal("second Alloc did not carve from the same slab")
	}
	r2[0] = NewInt(42)
	_ = append(r1, NewInt(99))
	if r2[0].Int() != 42 {
		t.Fatal("append to a carved row clobbered the next row")
	}
	allocs := testing.AllocsPerRun(100, func() { b.Alloc(3) })
	if allocs > 0.5 {
		t.Fatalf("Alloc averages %.1f allocations per call, want ~0 (arena not amortizing)", allocs)
	}
}

func TestBatchAllocWiderThanSlab(t *testing.T) {
	b := NewBatch(1)
	r := b.Alloc(slabDatums + 10)
	if len(r) != slabDatums+10 {
		t.Fatalf("wide Alloc len = %d", len(r))
	}
	r2 := b.Alloc(2)
	r2[0] = NewInt(7)
	if r2[0].Int() != 7 || len(b.Rows()) != 2 {
		t.Fatal("alloc after oversized row broken")
	}
}

func TestBatchAppendAndReset(t *testing.T) {
	b := NewBatch(4)
	ext := Row{NewInt(1)}
	b.Append(ext)
	if b.Len() != 1 || &b.Row(0)[0] != &ext[0] {
		t.Fatal("Append must not copy the row")
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatal("Reset should empty the batch")
	}
	r := b.Alloc(1)
	r[0] = NewInt(9)
	if b.Len() != 1 || b.Row(0)[0].Int() != 9 {
		t.Fatal("batch unusable after Reset")
	}
}
