// Adversarial tuning scenarios. The paper's evaluation (Figures 7/8)
// races OnlinePT on one workload family — repeated TPC-H batches with a
// single disruptive update burst. The scenario matrix below generalizes
// that into the situations online tuners are actually judged on
// (DBA bandits, Perera et al.): workload drift, skewed multi-tenant
// interleaving, ad-hoc never-repeating queries, and update storms that
// punish eager index creation. Every scenario is a pure function of
// (scenario name, seed): statements are drawn from seeded splitmix64
// streams keyed per (scenario, tenant) — see rng.go — so any race cell
// replays byte-identically from those two values alone.
package workload

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"onlinetuner/internal/engine"
	"onlinetuner/internal/tpch"
)

// ScenarioOptions parameterize scenario construction. The zero value of
// every field selects a sensible default; Scale and Seed are the only
// knobs races normally set.
type ScenarioOptions struct {
	Scale tpch.Scale
	Seed  int64
	// Statements is the approximate total statement budget (0 = the
	// scenario's default, roughly 240–320).
	Statements int
	// Tenants is the tenant count for the multi-tenant scenario (0 = 6).
	Tenants int
	// BudgetFraction sets the index budget as a fraction of loaded data
	// bytes (0 = 2.0).
	BudgetFraction float64
	// ExecEngine selects the replay execution engine ("" = auto).
	ExecEngine string
	// Rules selects the optimizer rewrite-rule set ("" = all).
	Rules string
}

func (o ScenarioOptions) withDefaults() ScenarioOptions {
	if o.Scale <= 0 {
		o.Scale = 0.25
	}
	if o.Tenants <= 0 {
		o.Tenants = 6
	}
	if o.BudgetFraction <= 0 {
		o.BudgetFraction = 2.0
	}
	return o
}

// Scenario is one adversarial workload family.
type Scenario struct {
	Name        string
	Description string
	Build       func(ScenarioOptions) *Workload
}

// Scenarios returns the adversarial matrix in canonical order.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:        "stable",
			Description: "repeated OLAP mix with fresh parameters — the paper's own regime, as a control",
			Build:       buildStable,
		},
		{
			Name:        "drift",
			Description: "OLAP→OLTP flips at epoch boundaries; each epoch rewards a different index set",
			Build:       buildDrift,
		},
		{
			Name:        "tenants",
			Description: "Zipf-skewed multi-tenant interleaving; only hot tenants' indexes pay off",
			Build:       buildTenants,
		},
		{
			Name:        "adhoc",
			Description: "never-repeating query structures; fingerprint caching and index evidence both starve",
			Build:       buildAdhoc,
		},
		{
			Name:        "storm",
			Description: "query lulls followed by wide update storms that punish eager index creation",
			Build:       buildStorm,
		},
	}
}

// ScenarioNames lists the canonical scenario names in order.
func ScenarioNames() []string {
	var out []string
	for _, s := range Scenarios() {
		out = append(out, s.Name)
	}
	return out
}

// BuildScenario constructs one scenario's workload by name.
func BuildScenario(name string, o ScenarioOptions) (*Workload, error) {
	for _, s := range Scenarios() {
		if strings.EqualFold(s.Name, name) {
			return s.Build(o), nil
		}
	}
	return nil, fmt.Errorf("workload: unknown scenario %q (want one of %s)",
		name, strings.Join(ScenarioNames(), "|"))
}

// scenarioDB loads the TPC-H substrate at (scale, seed) and applies the
// index budget — identical for every advisor racing in the cell.
func scenarioDB(o ScenarioOptions) func() *engine.DB {
	return func() *engine.DB {
		db := engine.OpenConfig(engine.Config{ExecEngine: o.ExecEngine, Rules: o.Rules})
		if err := tpch.NewGenerator(o.Scale, o.Seed).Load(db); err != nil {
			panic(err)
		}
		var dataBytes int64
		for _, t := range db.Cat.Tables() {
			if h := db.Mgr.Heap(t.Name); h != nil {
				dataBytes += h.Bytes()
			}
		}
		db.Mgr.SetBudget(int64(float64(dataBytes) * o.BudgetFraction))
		return db
	}
}

// Scenario date range, matching the generated data (see tpch/datagen.go).
const (
	scenarioEpochDay  = 8035 // days from 1970-01-01 to 1992-01-01
	scenarioDateRange = 2405
)

func scenarioDate(days int) string {
	t := time.Unix(int64(days)*86400, 0).UTC()
	return fmt.Sprintf("DATE '%s'", t.Format("2006-01-02"))
}

// ---- statement templates ------------------------------------------------
//
// OLAP shapes reward covering range indexes on the fact tables; OLTP
// shapes reward narrow equality indexes on foreign keys. The split is
// what makes drift adversarial: no single configuration serves both.

// olapLineitemAgg is the Q1/Q6-ish shape: a selective l_shipdate range
// with grouped aggregates. An index on l_shipdate wins big.
func olapLineitemAgg(s *stream) string {
	d := scenarioEpochDay + s.intn(scenarioDateRange-130)
	span := 60 + s.intn(60)
	if s.intn(2) == 0 {
		return fmt.Sprintf(`SELECT l_returnflag, COUNT(*) AS cnt, SUM(l_extendedprice) AS rev
			FROM lineitem WHERE l_shipdate >= %s AND l_shipdate < %s
			GROUP BY l_returnflag ORDER BY l_returnflag`,
			scenarioDate(d), scenarioDate(d+span))
	}
	return fmt.Sprintf(`SELECT SUM(l_extendedprice * l_discount) AS revenue
		FROM lineitem WHERE l_shipdate >= %s AND l_shipdate < %s AND l_quantity < %d`,
		scenarioDate(d), scenarioDate(d+span), 20+s.intn(20))
}

// olapOrdersAgg is a selective o_orderdate range aggregate.
func olapOrdersAgg(s *stream) string {
	d := scenarioEpochDay + s.intn(scenarioDateRange-120)
	return fmt.Sprintf(`SELECT o_orderpriority, COUNT(*) AS cnt
		FROM orders WHERE o_orderdate >= %s AND o_orderdate < %s
		GROUP BY o_orderpriority ORDER BY o_orderpriority`,
		scenarioDate(d), scenarioDate(d+90))
}

// oltpLineitemByPart is a point lookup by l_partkey.
func oltpLineitemByPart(s *stream, rows map[string]int) string {
	return fmt.Sprintf("SELECT l_extendedprice, l_quantity FROM lineitem WHERE l_partkey = %d",
		s.intn(maxRows(rows, "part")))
}

// oltpOrdersByCust is a point lookup by o_custkey.
func oltpOrdersByCust(s *stream, rows map[string]int) string {
	return fmt.Sprintf("SELECT o_orderdate, o_totalprice FROM orders WHERE o_custkey = %d",
		s.intn(maxRows(rows, "customer")))
}

// oltpPartsuppBySupp is a point lookup by ps_suppkey.
func oltpPartsuppBySupp(s *stream, rows map[string]int) string {
	return fmt.Sprintf("SELECT ps_availqty, ps_supplycost FROM partsupp WHERE ps_suppkey = %d",
		s.intn(maxRows(rows, "supplier")))
}

// oltpTouchOrder is the light DML that erodes fact-table indexes during
// OLTP epochs: one order's lineitems get maintained on every lineitem
// index.
func oltpTouchOrder(s *stream, rows map[string]int) string {
	return fmt.Sprintf("UPDATE lineitem SET l_quantity = l_quantity + 1 WHERE l_orderkey = %d",
		s.intn(maxRows(rows, "orders")))
}

// stormUpdate is the wide-range update that makes eager index creation
// lose: a quarter of the order key space per statement, so every held
// lineitem index pays bulk maintenance.
func stormUpdate(s *stream, rows map[string]int) string {
	orders := maxRows(rows, "orders")
	width := orders / 4
	if width < 1 {
		width = 1
	}
	lo := s.intn(orders)
	return fmt.Sprintf(
		"UPDATE lineitem SET l_quantity = l_quantity + 1, l_extendedprice = l_extendedprice + 1 WHERE l_orderkey >= %d AND l_orderkey < %d",
		lo, lo+width)
}

func maxRows(rows map[string]int, table string) int {
	if n := rows[table]; n > 0 {
		return n
	}
	return 1
}

// ---- scenario builders --------------------------------------------------

// buildStable repeats the OLAP mix with fresh parameters — repetition
// the online tuner converts into evidence, like the paper's Figure 7.
func buildStable(o ScenarioOptions) *Workload {
	o = o.withDefaults()
	total := o.Statements
	if total <= 0 {
		total = 300
	}
	s := newStream(o.Seed, "stable", 0)
	w := &Workload{
		Name:  fmt.Sprintf("stable (%d OLAP statements, scale %.2g, seed %d)", total, float64(o.Scale), o.Seed),
		NewDB: scenarioDB(o),
	}
	batch := total / 10
	if batch < 1 {
		batch = 1
	}
	for i := 0; i < total; i++ {
		if i%batch == 0 {
			w.Boundaries = append(w.Boundaries, len(w.Statements))
		}
		switch i % 3 {
		case 0, 1:
			w.Statements = append(w.Statements, olapLineitemAgg(s))
		default:
			w.Statements = append(w.Statements, olapOrdersAgg(s))
		}
	}
	return w
}

// buildDrift alternates OLAP epochs (range aggregates over the fact
// tables) with OLTP epochs (foreign-key point lookups plus light DML
// that maintains — and erodes — the OLAP indexes). Each flip invalidates
// the previous epoch's best configuration.
func buildDrift(o ScenarioOptions) *Workload {
	o = o.withDefaults()
	total := o.Statements
	if total <= 0 {
		total = 320
	}
	const epochs = 4
	epochLen := total / epochs
	if epochLen < 1 {
		epochLen = 1
	}
	rows := o.Scale.Rows()
	s := newStream(o.Seed, "drift", 0)
	w := &Workload{
		Name: fmt.Sprintf("drift (%d epochs × %d, OLAP↔OLTP flips, scale %.2g, seed %d)",
			epochs, epochLen, float64(o.Scale), o.Seed),
		NewDB: scenarioDB(o),
	}
	for e := 0; e < epochs; e++ {
		w.Boundaries = append(w.Boundaries, len(w.Statements))
		olap := e%2 == 0
		for i := 0; i < epochLen; i++ {
			var stmt string
			if olap {
				if i%3 == 2 {
					stmt = olapOrdersAgg(s)
				} else {
					stmt = olapLineitemAgg(s)
				}
			} else {
				switch i % 4 {
				case 0:
					stmt = oltpLineitemByPart(s, rows)
				case 1:
					stmt = oltpOrdersByCust(s, rows)
				case 2:
					stmt = oltpPartsuppBySupp(s, rows)
				default:
					stmt = oltpTouchOrder(s, rows)
				}
			}
			w.Statements = append(w.Statements, stmt)
		}
	}
	return w
}

// tenantStatement draws tenant t's next statement from t's own stream.
// Each tenant's template family targets a different (table, column), so
// the index that serves one tenant is useless to the others.
func tenantStatement(t int, s *stream, rows map[string]int) string {
	switch t % 6 {
	case 0:
		return olapLineitemAgg(s)
	case 1:
		return oltpOrdersByCust(s, rows)
	case 2:
		return oltpLineitemByPart(s, rows)
	case 3:
		return oltpPartsuppBySupp(s, rows)
	case 4:
		lo := 1 + s.intn(44)
		return fmt.Sprintf("SELECT p_partkey, p_retailprice FROM part WHERE p_size >= %d AND p_size < %d", lo, lo+5)
	default:
		return olapOrdersAgg(s)
	}
}

// buildTenants interleaves tenant streams with Zipf-skewed arrival: the
// hot tenants dominate, so their indexes earn creation while the cold
// tail never accumulates enough evidence — the multi-tenant regime of
// the DBA-bandits evaluation. Tenant parameter streams are keyed per
// (scenario, tenant); the interleaving order draws from its own stream,
// so reordering arrivals never perturbs any tenant's statement content.
func buildTenants(o ScenarioOptions) *Workload {
	o = o.withDefaults()
	total := o.Statements
	if total <= 0 {
		total = 300
	}
	rows := o.Scale.Rows()
	arrival := newZipf(newStream(o.Seed, "tenants.arrival", 0), o.Tenants, 1.2)
	streams := make([]*stream, o.Tenants)
	for t := range streams {
		streams[t] = newStream(o.Seed, "tenants", t+1)
	}
	w := &Workload{
		Name: fmt.Sprintf("tenants (%d Zipf-skewed tenants, %d statements, scale %.2g, seed %d)",
			o.Tenants, total, float64(o.Scale), o.Seed),
		NewDB: scenarioDB(o),
	}
	batch := total / 10
	if batch < 1 {
		batch = 1
	}
	for i := 0; i < total; i++ {
		if i%batch == 0 {
			w.Boundaries = append(w.Boundaries, len(w.Statements))
		}
		t := arrival.draw()
		w.Statements = append(w.Statements, tenantStatement(t, streams[t], rows))
	}
	return w
}

// adhocTable describes one table's ad-hoc building blocks.
type adhocTable struct {
	name  string
	preds []adhocPred
	projs [][]string
}

type adhocPred struct {
	col string
	// lo/hi bound integer parameter draws; dateCol switches to date
	// literals over the scenario range.
	lo, hi  int
	dateCol bool
}

func adhocTables(rows map[string]int) []adhocTable {
	return []adhocTable{
		{name: "lineitem",
			preds: []adhocPred{
				{col: "l_quantity", lo: 1, hi: 50},
				{col: "l_orderkey", lo: 0, hi: maxRows(rows, "orders")},
				{col: "l_partkey", lo: 0, hi: maxRows(rows, "part")},
				{col: "l_suppkey", lo: 0, hi: maxRows(rows, "supplier")},
				{col: "l_shipdate", dateCol: true},
			},
			projs: [][]string{
				{"l_orderkey", "l_extendedprice"},
				{"l_quantity", "l_discount", "l_tax"},
				{"l_returnflag", "l_shipmode"},
			}},
		{name: "orders",
			preds: []adhocPred{
				{col: "o_custkey", lo: 0, hi: maxRows(rows, "customer")},
				{col: "o_totalprice", lo: 1000, hi: 5000},
				{col: "o_orderdate", dateCol: true},
				{col: "o_shippriority", lo: 0, hi: 2},
			},
			projs: [][]string{
				{"o_orderkey", "o_totalprice"},
				{"o_orderdate", "o_orderpriority"},
			}},
		{name: "customer",
			preds: []adhocPred{
				{col: "c_nationkey", lo: 0, hi: 25},
				{col: "c_acctbal", lo: -1000, hi: 9000},
			},
			projs: [][]string{
				{"c_name", "c_acctbal"},
				{"c_custkey", "c_mktsegment"},
			}},
		{name: "part",
			preds: []adhocPred{
				{col: "p_size", lo: 1, hi: 50},
				{col: "p_retailprice", lo: 900, hi: 1900},
			},
			projs: [][]string{
				{"p_partkey", "p_name"},
				{"p_brand", "p_size"},
			}},
		{name: "partsupp",
			preds: []adhocPred{
				{col: "ps_availqty", lo: 1, hi: 9999},
				{col: "ps_suppkey", lo: 0, hi: maxRows(rows, "supplier")},
			},
			projs: [][]string{
				{"ps_partkey", "ps_supplycost"},
				{"ps_availqty", "ps_suppkey"},
			}},
	}
}

var adhocOps = []string{"=", ">=", "<", ">", "<=", "between"}

// adhocStatement draws one structurally-unique query: table × predicate
// column × operator × projection × aggregate shape. The signature
// returned excludes literals — two statements with the same signature
// would share a fingerprint after parameter canonicalization, which is
// exactly what this scenario must never allow.
func adhocStatement(s *stream, tables []adhocTable) (string, string) {
	t := tables[s.intn(len(tables))]
	p := t.preds[s.intn(len(t.preds))]
	op := adhocOps[s.intn(len(adhocOps))]
	projIdx := s.intn(len(t.projs) + 1) // last slot = aggregate shape
	var pred string
	switch {
	case p.dateCol:
		d := scenarioEpochDay + s.intn(scenarioDateRange-100)
		switch op {
		case "=":
			pred = fmt.Sprintf("%s = %s", p.col, scenarioDate(d))
		case ">=", ">":
			pred = fmt.Sprintf("%s %s %s", p.col, op, scenarioDate(scenarioEpochDay+scenarioDateRange-90-s.intn(200)))
		case "<", "<=":
			pred = fmt.Sprintf("%s %s %s", p.col, op, scenarioDate(scenarioEpochDay+90+s.intn(200)))
		default:
			pred = fmt.Sprintf("%s BETWEEN %s AND %s", p.col, scenarioDate(d), scenarioDate(d+30+s.intn(60)))
		}
	default:
		v := p.lo + s.intn(maxInt(1, p.hi-p.lo))
		switch op {
		case "=":
			pred = fmt.Sprintf("%s = %d", p.col, v)
		case ">=", ">":
			pred = fmt.Sprintf("%s %s %d", p.col, op, p.hi-maxInt(1, (p.hi-p.lo)/10)-s.intn(maxInt(1, (p.hi-p.lo)/10)))
		case "<", "<=":
			pred = fmt.Sprintf("%s %s %d", p.col, op, p.lo+maxInt(1, (p.hi-p.lo)/10)+s.intn(maxInt(1, (p.hi-p.lo)/10)))
		default:
			span := maxInt(1, (p.hi-p.lo)/8)
			pred = fmt.Sprintf("%s BETWEEN %d AND %d", p.col, v, v+span)
		}
	}
	var sel string
	if projIdx == len(t.projs) {
		sel = fmt.Sprintf("COUNT(*) AS cnt, SUM(%s) AS agg", t.preds[0].colOrQuantity())
	} else {
		sel = strings.Join(t.projs[projIdx], ", ")
	}
	sig := fmt.Sprintf("%s|%s|%s|%d", t.name, p.col, op, projIdx)
	return fmt.Sprintf("SELECT %s FROM %s WHERE %s", sel, t.name, pred), sig
}

// colOrQuantity picks a numeric column safe to SUM.
func (p adhocPred) colOrQuantity() string {
	if p.dateCol {
		return "1"
	}
	return p.col
}

// buildAdhoc draws structurally-unique queries so no fingerprint — and
// no index's evidence — ever repeats enough to matter. The right move
// for every tuner is to mostly abstain; the scenario punishes both
// fingerprint caching and trigger-happy creation.
func buildAdhoc(o ScenarioOptions) *Workload {
	o = o.withDefaults()
	total := o.Statements
	if total <= 0 {
		total = 240
	}
	rows := o.Scale.Rows()
	tables := adhocTables(rows)
	s := newStream(o.Seed, "adhoc", 0)
	seen := map[string]bool{}
	w := &Workload{
		Name: fmt.Sprintf("adhoc (%d never-repeating statements, scale %.2g, seed %d)",
			total, float64(o.Scale), o.Seed),
		NewDB: scenarioDB(o),
	}
	batch := total / 10
	if batch < 1 {
		batch = 1
	}
	for i := 0; i < total; i++ {
		if i%batch == 0 {
			w.Boundaries = append(w.Boundaries, len(w.Statements))
		}
		stmt, sig := adhocStatement(s, tables)
		// Redraw (deterministically) until the structural signature is
		// fresh; the combination space is far larger than any workload, so
		// the bound is never hit in practice.
		for tries := 0; seen[sig] && tries < 200; tries++ {
			stmt, sig = adhocStatement(s, tables)
		}
		seen[sig] = true
		w.Statements = append(w.Statements, stmt)
	}
	return w
}

// buildStorm cycles short query lulls — exactly long enough to tempt an
// eager tuner into creating lineitem indexes — with wide update storms
// whose index maintenance dwarfs the queries' savings. Holding an index
// through a storm is the losing move; the scenario measures who realizes
// it, and when.
func buildStorm(o ScenarioOptions) *Workload {
	o = o.withDefaults()
	total := o.Statements
	if total <= 0 {
		total = 270
	}
	const cycles = 3
	perCycle := total / cycles
	if perCycle < 3 {
		perCycle = 3
	}
	lull := perCycle / 3
	storm := perCycle - lull
	rows := o.Scale.Rows()
	s := newStream(o.Seed, "storm", 0)
	w := &Workload{
		Name: fmt.Sprintf("storm (%d cycles: %d queries then %d wide updates, scale %.2g, seed %d)",
			cycles, lull, storm, float64(o.Scale), o.Seed),
		NewDB: scenarioDB(o),
	}
	for c := 0; c < cycles; c++ {
		w.Boundaries = append(w.Boundaries, len(w.Statements))
		for i := 0; i < lull; i++ {
			w.Statements = append(w.Statements, olapLineitemAgg(s))
		}
		w.Boundaries = append(w.Boundaries, len(w.Statements))
		for i := 0; i < storm; i++ {
			w.Statements = append(w.Statements, stormUpdate(s, rows))
		}
	}
	return w
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ScenarioSignature renders a workload's statement stream as one byte
// string — the determinism tests' comparison unit, and a convenient
// debugging artifact when two runs of a cell diverge.
func ScenarioSignature(w *Workload) string {
	var sb strings.Builder
	sb.WriteString(w.Name)
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "boundaries=%v\n", w.Boundaries)
	for i, s := range w.Statements {
		fmt.Fprintf(&sb, "%4d %s\n", i, s)
	}
	return sb.String()
}

// sortedScenarioNames is used by error paths and tests.
func sortedScenarioNames() []string {
	out := ScenarioNames()
	sort.Strings(out)
	return out
}
