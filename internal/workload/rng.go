package workload

import "math"

// stream is a deterministic splitmix64 sequence keyed by (seed,
// scenario, tenant), mirroring internal/fault's per-site streams: the
// state is seeded from the scenario seed XOR an FNV-1a hash of the
// scenario name XOR a tenant perturbation, so every (scenario, tenant)
// pair draws from its own independent sequence. Two consequences the
// scenario tests lock in:
//
//   - A race cell is reproducible from (scenario, seed) alone: the
//     statement stream is a pure function of those two values, with no
//     hidden global state, wall clock, or map-iteration order.
//
//   - Tenant streams do not interfere. Adding statements for one tenant
//     never perturbs another tenant's parameter sequence, because each
//     tenant consumes only its own stream.
type stream struct {
	state uint64
}

// streamGamma is SplitMix64's odd increment (golden-ratio based).
const streamGamma = 0x9E3779B97F4A7C15

// newStream derives the (seed, scenario, tenant) stream.
func newStream(seed int64, scenario string, tenant int) *stream {
	s := uint64(seed) ^ hashString(scenario) ^ mix64(uint64(tenant+1)*streamGamma)
	return &stream{state: mix64(s)}
}

// hashString is FNV-1a, matching internal/fault's site hashing idiom.
func hashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// mix64 is the SplitMix64 output mix — full-avalanche over 64 bits.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// next advances the stream and returns a uniform 64-bit value.
func (s *stream) next() uint64 {
	s.state += streamGamma
	return mix64(s.state)
}

// intn returns a uniform draw in [0, n).
func (s *stream) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(s.next() % uint64(n))
}

// float64 returns a uniform draw in [0, 1) with 53 bits of precision.
func (s *stream) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// zipf draws from a Zipf distribution over {0..n-1} with exponent theta
// by inverse-CDF over precomputed weights — deterministic and allocation
// free for the small n the tenant scenario uses.
type zipf struct {
	cum []float64
	src *stream
}

func newZipf(src *stream, n int, theta float64) *zipf {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), theta)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &zipf{cum: cum, src: src}
}

func (z *zipf) draw() int {
	u := z.src.float64()
	for i, c := range z.cum {
		if u < c {
			return i
		}
	}
	return len(z.cum) - 1
}
