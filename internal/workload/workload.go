// Package workload defines the experiment workloads of Section 4: the
// simple workloads W1–W3 of Table 1 (scaled to this engine's in-memory
// sizes while preserving their structure and storage-budget regimes) and
// the TPC-H batch workloads of Figures 7–8, including the disruptive
// update injection of Figures 7(c)/(d).
package workload

import (
	"fmt"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/engine"
	"onlinetuner/internal/tpch"
)

// Workload is a replayable statement sequence plus the recipe for the
// database it runs against.
type Workload struct {
	Name       string
	Statements []string
	// Boundaries[i] is the statement index where batch i starts; a final
	// implicit boundary is len(Statements). Empty means one batch.
	Boundaries []int
	// NewDB creates and loads the initial (untuned) database and applies
	// the storage budget. Every technique gets its own instance.
	NewDB func() *engine.DB
}

// Batches splits the per-statement values into per-batch sums.
func (w *Workload) Batches(perStatement []float64) []float64 {
	if len(w.Boundaries) == 0 {
		total := 0.0
		for _, v := range perStatement {
			total += v
		}
		return []float64{total}
	}
	out := make([]float64, len(w.Boundaries))
	for b := 0; b < len(w.Boundaries); b++ {
		start := w.Boundaries[b]
		end := len(perStatement)
		if b+1 < len(w.Boundaries) {
			end = w.Boundaries[b+1]
		}
		for i := start; i < end && i < len(perStatement); i++ {
			out[b] += perStatement[i]
		}
	}
	return out
}

// simpleRows is the scale of the Table 1 tables R and S.
const simpleRows = 3000

// Q1, Q2, Q3 are the Table 1 queries. Q3 instances insert disjoint
// slices of S so the workload, like the paper's, keeps adding data.
const (
	Q1 = "SELECT a, b, c, id FROM R WHERE a < 100"
	Q2 = "SELECT a, d, e, id FROM R WHERE a < 100"
)

// Q3 returns the i-th insert statement of W3. Each instance copies a
// tenth of S, so — like the paper's INSERT INTO R SELECT * FROM S — the
// per-statement index maintenance dominates once indexes exist.
func Q3(i int) string {
	lo := (i * 300) % simpleRows
	return fmt.Sprintf("INSERT INTO R SELECT * FROM S WHERE id >= %d AND id < %d", lo, lo+300)
}

// newSimpleDB loads the Table 1 schema and data: R(id,a,b,c,d,e) with a
// uniform over 1000 values (so a<100 selects ~10%), and S as the insert
// source.
func newSimpleDB(budget int64) func() *engine.DB {
	return func() *engine.DB {
		db := engine.Open()
		db.MustExec("CREATE TABLE R (id INT, a INT, b INT, c INT, d INT, e INT, PRIMARY KEY (id))")
		db.MustExec("CREATE TABLE S (id INT, a INT, b INT, c INT, d INT, e INT, PRIMARY KEY (id))")
		for i := 0; i < simpleRows; i++ {
			db.MustExec(fmt.Sprintf("INSERT INTO R VALUES (%d, %d, %d, %d, %d, %d)",
				i, i%1000, i, i, i, i))
			db.MustExec(fmt.Sprintf("INSERT INTO S VALUES (%d, %d, %d, %d, %d, %d)",
				i, i%1000, i, i, i, i))
		}
		if err := db.Analyze("R"); err != nil {
			panic(err)
		}
		if err := db.Analyze("S"); err != nil {
			panic(err)
		}
		db.Mgr.SetBudget(budget)
		return db
	}
}

// indexBytes estimates the size of an index with the given columns over
// the simple R table, matching storage.Manager.EstimateIndexBytes.
func indexBytes(cols int) int64 {
	return int64(simpleRows) * int64(cols*8+8)
}

// Storage budgets mirroring Table 1's 135/138/150 MB regimes: one
// 4-column index; one 6-column (merged) index; several indexes.
var (
	BudgetOne4Col = indexBytes(4) + indexBytes(4)/8
	BudgetMerged  = indexBytes(6) + indexBytes(6)/10
	BudgetRoomy   = indexBytes(6) + 2*indexBytes(4) + indexBytes(4)/2
)

func repeat(q string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = q
	}
	return out
}

// W1 is 250×q1 followed by 250×q2 with room for one 4-column index.
func W1() *Workload {
	stmts := append(repeat(Q1, 250), repeat(Q2, 250)...)
	return &Workload{Name: "W1 (250 q1; 250 q2, one-index budget)",
		Statements: stmts, NewDB: newSimpleDB(BudgetOne4Col)}
}

// W2 is 250 interleaved (q1;q2) pairs under the given budget regime.
func W2(budget int64, label string) *Workload {
	var stmts []string
	for i := 0; i < 250; i++ {
		stmts = append(stmts, Q1, Q2)
	}
	return &Workload{Name: "W2 (250 interleaved q1;q2, " + label + ")",
		Statements: stmts, NewDB: newSimpleDB(budget)}
}

// W3 is 100×q1 followed by 100 insert statements with a roomy budget.
func W3() *Workload {
	stmts := repeat(Q1, 100)
	for i := 0; i < 100; i++ {
		stmts = append(stmts, Q3(i))
	}
	return &Workload{Name: "W3 (100 q1; 100 q3 inserts)",
		Statements: stmts, NewDB: newSimpleDB(BudgetRoomy)}
}

// SimpleWorkloads returns the five Table 1 rows in order.
func SimpleWorkloads() []*Workload {
	return []*Workload{
		W1(),
		W2(BudgetOne4Col, "one-index budget"),
		W2(BudgetMerged, "merged-index budget"),
		W2(BudgetRoomy, "roomy budget"),
		W3(),
	}
}

// TPCHOptions parameterize the Section 4.2 workloads.
type TPCHOptions struct {
	Scale      tpch.Scale
	Seed       int64
	NumBatches int
	// DisruptAfterBatch injects DisruptCount update statements as an
	// extra batch after this many batches (0 = no injection) — the
	// Figure 7(c)/(d) scenario.
	DisruptAfterBatch int
	DisruptCount      int
	// BudgetFraction sets the index budget as a fraction of the loaded
	// data size (the paper's "1 GB database with an additional 1 GB" is
	// fraction 1.0).
	BudgetFraction float64
	// ExecEngine selects the execution engine for replay databases:
	// "auto" (default), "row", or "vector". Results are byte-identical
	// under every mode.
	ExecEngine string
	// Rules selects the optimizer rewrite-rule set for replay databases
	// ("" = all). Like ExecEngine, toggling it never changes results.
	Rules string
}

// DefaultTPCH matches the Figure 7(a)/(b) setup at laptop scale. The
// paper gives indexes a budget equal to the database size (1 GB each);
// for TPC-H's 22 queries that budget is effectively unconstrained — the
// useful index mass is far below it — so the default fraction here is
// sized to be similarly loose relative to this engine's index widths.
func DefaultTPCH() TPCHOptions {
	return TPCHOptions{Scale: 0.5, Seed: 1, NumBatches: 60, BudgetFraction: 2.5}
}

// TPCH builds the batch workload. The generator seed fixes both data and
// query parameters so every technique sees an identical workload.
func TPCH(o TPCHOptions) *Workload {
	gen := tpch.NewGenerator(o.Scale, o.Seed)
	batches := gen.Batches(o.NumBatches)
	if o.DisruptAfterBatch > 0 {
		at := o.DisruptAfterBatch
		if at > len(batches) {
			at = len(batches) / 2
		}
		upd := gen.DisruptiveUpdates(o.DisruptCount)
		var withUpd [][]string
		withUpd = append(withUpd, batches[:at]...)
		withUpd = append(withUpd, upd)
		withUpd = append(withUpd, batches[at:]...)
		batches = withUpd
	}
	w := &Workload{Name: fmt.Sprintf("TPC-H %d batches (scale %.2g)", o.NumBatches, float64(o.Scale))}
	for _, b := range batches {
		w.Boundaries = append(w.Boundaries, len(w.Statements))
		w.Statements = append(w.Statements, b...)
	}
	w.NewDB = func() *engine.DB {
		db := engine.OpenConfig(engine.Config{ExecEngine: o.ExecEngine, Rules: o.Rules})
		loader := tpch.NewGenerator(o.Scale, o.Seed)
		if err := loader.Load(db); err != nil {
			panic(err)
		}
		var dataBytes int64
		for _, t := range db.Cat.Tables() {
			if h := db.Mgr.Heap(t.Name); h != nil {
				dataBytes += h.Bytes()
			}
		}
		if o.BudgetFraction > 0 {
			db.Mgr.SetBudget(int64(float64(dataBytes) * o.BudgetFraction))
		}
		return db
	}
	return w
}

// CandidateIndexes are the Table 1 candidate definitions (I1..I5), used
// by tests and the Table 1 harness for reference sizing.
func CandidateIndexes() []*catalog.Index {
	mk := func(name string, cols ...string) *catalog.Index {
		return &catalog.Index{Name: name, Table: "R", Columns: cols}
	}
	return []*catalog.Index{
		mk("I1", "id", "a", "b", "c"),
		mk("I2", "a", "b", "c", "id"),
		mk("I3", "id", "a", "d", "e"),
		mk("I4", "a", "d", "e", "id"),
		mk("I5", "a", "b", "c", "d", "e", "id"),
	}
}
