package workload

import (
	"strings"
	"testing"
)

// TestScenarioDeterminism is the satellite-1 guarantee: a race cell is
// reproducible from (scenario, seed) alone. Two independent builds must
// produce byte-identical statement streams, and a different seed must
// not.
func TestScenarioDeterminism(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			opts := ScenarioOptions{Scale: 0.1, Seed: 7}
			a := ScenarioSignature(sc.Build(opts))
			b := ScenarioSignature(sc.Build(opts))
			if a != b {
				t.Fatalf("scenario %q: two builds with the same seed differ", sc.Name)
			}
			c := ScenarioSignature(sc.Build(ScenarioOptions{Scale: 0.1, Seed: 8}))
			if a == c {
				t.Fatalf("scenario %q: seeds 7 and 8 produced identical streams", sc.Name)
			}
		})
	}
}

// TestScenarioShape locks in the matrix contract: every scenario yields
// a non-trivial statement stream with batch boundaries, and the names
// are unique.
func TestScenarioShape(t *testing.T) {
	seen := map[string]bool{}
	for _, sc := range Scenarios() {
		if seen[sc.Name] {
			t.Fatalf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		w := sc.Build(ScenarioOptions{Scale: 0.1, Seed: 1})
		if len(w.Statements) < 50 {
			t.Fatalf("scenario %q: only %d statements", sc.Name, len(w.Statements))
		}
		if len(w.Boundaries) < 2 {
			t.Fatalf("scenario %q: wants multiple batches, got boundaries %v", sc.Name, w.Boundaries)
		}
		if w.Boundaries[0] != 0 {
			t.Fatalf("scenario %q: first boundary %d, want 0", sc.Name, w.Boundaries[0])
		}
		for i := 1; i < len(w.Boundaries); i++ {
			if w.Boundaries[i] <= w.Boundaries[i-1] || w.Boundaries[i] >= len(w.Statements) {
				t.Fatalf("scenario %q: bad boundaries %v", sc.Name, w.Boundaries)
			}
		}
		if w.NewDB == nil {
			t.Fatalf("scenario %q: nil NewDB", sc.Name)
		}
	}
}

// TestTenantStreamIndependence: a tenant's parameter stream must not
// depend on how often other tenants were scheduled. We simulate two
// interleavings and check tenant 3's first k statements are identical.
func TestTenantStreamIndependence(t *testing.T) {
	rows := ScenarioOptions{}.withDefaults().Scale.Rows()
	const tenant = 3
	draw := func(skipOthers int) []string {
		// Exercise other tenants' streams a varying amount; tenant 3's
		// stream must be unaffected.
		for other := 0; other < 6; other++ {
			if other == tenant {
				continue
			}
			s := newStream(42, "tenants", other+1)
			for i := 0; i < skipOthers; i++ {
				tenantStatement(other, s, rows)
			}
		}
		s := newStream(42, "tenants", tenant+1)
		var out []string
		for i := 0; i < 8; i++ {
			out = append(out, tenantStatement(tenant, s, rows))
		}
		return out
	}
	a := draw(0)
	b := draw(17)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tenant %d statement %d depends on other tenants' draws:\n%s\nvs\n%s",
				tenant, i, a[i], b[i])
		}
	}
}

// TestAdhocNeverRepeats: the ad-hoc scenario's whole point is that no
// structural query signature recurs, so fingerprint canonicalization
// can never produce a cache hit across distinct statements.
func TestAdhocNeverRepeats(t *testing.T) {
	w := buildAdhoc(ScenarioOptions{Scale: 0.1, Seed: 3})
	rows := ScenarioOptions{Scale: 0.1}.withDefaults().Scale.Rows()
	_ = rows
	seen := map[string]int{}
	for i, stmt := range w.Statements {
		// Reduce to a structural signature: strip digits and date
		// literals so only table/columns/operators/projection remain.
		sig := structuralSig(stmt)
		if j, ok := seen[sig]; ok {
			t.Fatalf("statements %d and %d share structure %q:\n%s\n%s",
				j, i, sig, w.Statements[j], stmt)
		}
		seen[sig] = i
	}
}

// structuralSig strips literals from a generated ad-hoc statement.
func structuralSig(stmt string) string {
	var sb strings.Builder
	inDate := false
	for i := 0; i < len(stmt); i++ {
		c := stmt[i]
		switch {
		case c == '\'':
			inDate = !inDate
		case inDate:
			// skip date literal body
		case c >= '0' && c <= '9', c == '-', c == '.':
			// skip numeric literals (columns have no digits in this schema)
		default:
			sb.WriteByte(c)
		}
	}
	return sb.String()
}

// TestScenarioStatementsExecute replays a slice of every scenario
// against a loaded database: each generated statement must parse, plan,
// and execute.
func TestScenarioStatementsExecute(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			w := sc.Build(ScenarioOptions{Scale: 0.1, Seed: 11, Statements: 60})
			db := w.NewDB()
			defer db.Close()
			n := len(w.Statements)
			if n > 40 {
				n = 40
			}
			for i := 0; i < n; i++ {
				if _, _, err := db.Exec(w.Statements[i]); err != nil {
					t.Fatalf("statement %d failed: %v\n%s", i, err, w.Statements[i])
				}
			}
		})
	}
}

// TestBuildScenarioRegistry covers lookup by name, case folding, and
// the error path.
func TestBuildScenarioRegistry(t *testing.T) {
	if _, err := BuildScenario("Drift", ScenarioOptions{Scale: 0.1, Seed: 1}); err != nil {
		t.Fatalf("case-insensitive lookup failed: %v", err)
	}
	if _, err := BuildScenario("nope", ScenarioOptions{}); err == nil {
		t.Fatal("unknown scenario should error")
	}
	names := sortedScenarioNames()
	for i := 1; i < len(names); i++ {
		if names[i] == names[i-1] {
			t.Fatalf("duplicate name %q", names[i])
		}
	}
}
