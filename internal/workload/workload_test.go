package workload

import (
	"strings"
	"testing"

	"onlinetuner/internal/tpch"
)

func TestSimpleWorkloadShapes(t *testing.T) {
	w1 := W1()
	if len(w1.Statements) != 500 {
		t.Errorf("W1 statements = %d", len(w1.Statements))
	}
	if w1.Statements[0] != Q1 || w1.Statements[499] != Q2 {
		t.Error("W1 phases wrong")
	}
	w2 := W2(BudgetOne4Col, "x")
	if len(w2.Statements) != 500 || w2.Statements[0] != Q1 || w2.Statements[1] != Q2 {
		t.Error("W2 interleave wrong")
	}
	w3 := W3()
	if len(w3.Statements) != 200 {
		t.Errorf("W3 statements = %d", len(w3.Statements))
	}
	if !strings.HasPrefix(w3.Statements[150], "INSERT INTO R SELECT") {
		t.Errorf("W3 insert phase wrong: %s", w3.Statements[150])
	}
	if got := len(SimpleWorkloads()); got != 5 {
		t.Errorf("simple workloads = %d, want 5 (the Table 1 rows)", got)
	}
}

func TestBudgetsOrdered(t *testing.T) {
	if !(BudgetOne4Col < BudgetMerged && BudgetMerged < BudgetRoomy) {
		t.Errorf("budget regimes out of order: %d %d %d", BudgetOne4Col, BudgetMerged, BudgetRoomy)
	}
}

func TestSimpleDBLoads(t *testing.T) {
	w := W1()
	db := w.NewDB()
	if db.Mgr.Heap("R").Len() != simpleRows || db.Mgr.Heap("S").Len() != simpleRows {
		t.Error("simple db row counts wrong")
	}
	if db.Mgr.Budget() != BudgetOne4Col {
		t.Error("budget not applied")
	}
	if !db.Stats.Has("R", "a") {
		t.Error("statistics missing")
	}
	// The workload executes cleanly end to end.
	for _, stmt := range w.Statements[:3] {
		if _, _, err := db.Exec(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
}

func TestBatches(t *testing.T) {
	w := &Workload{Boundaries: []int{0, 3, 5}}
	got := w.Batches([]float64{1, 1, 1, 2, 2, 3, 3, 3})
	want := []float64{3, 4, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batches = %v, want %v", got, want)
		}
	}
	// No boundaries: single batch.
	w2 := &Workload{}
	if got := w2.Batches([]float64{1, 2, 3}); len(got) != 1 || got[0] != 6 {
		t.Errorf("single batch = %v", got)
	}
}

func TestTPCHWorkloadConstruction(t *testing.T) {
	o := TPCHOptions{Scale: 0.2, Seed: 3, NumBatches: 4, BudgetFraction: 0.5}
	w := TPCH(o)
	if len(w.Boundaries) != 4 {
		t.Fatalf("boundaries = %d", len(w.Boundaries))
	}
	if len(w.Statements) != 4*22 {
		t.Fatalf("statements = %d", len(w.Statements))
	}
	db := w.NewDB()
	if db.Mgr.Budget() <= 0 {
		t.Error("budget fraction not applied")
	}
	// Deterministic: same options → same workload.
	w2 := TPCH(o)
	for i := range w.Statements {
		if w.Statements[i] != w2.Statements[i] {
			t.Fatal("workload not deterministic")
		}
	}
}

func TestTPCHDisruption(t *testing.T) {
	o := TPCHOptions{Scale: 0.2, Seed: 3, NumBatches: 6, DisruptAfterBatch: 3, DisruptCount: 8, BudgetFraction: 1}
	w := TPCH(o)
	if len(w.Boundaries) != 7 { // 6 batches + 1 update batch
		t.Fatalf("boundaries = %d", len(w.Boundaries))
	}
	// The injected batch contains lineitem updates.
	start := w.Boundaries[3]
	end := w.Boundaries[4]
	found := false
	for _, s := range w.Statements[start:end] {
		if strings.HasPrefix(s, "UPDATE lineitem") {
			found = true
		}
	}
	if !found {
		t.Error("disruptive updates not injected at batch 4")
	}
	// Clamped when DisruptAfterBatch exceeds the batch count.
	o.DisruptAfterBatch = 99
	w2 := TPCH(o)
	if len(w2.Boundaries) != 7 {
		t.Errorf("clamped boundaries = %d", len(w2.Boundaries))
	}
}

func TestCandidateIndexes(t *testing.T) {
	cands := CandidateIndexes()
	if len(cands) != 5 {
		t.Fatalf("candidates = %d", len(cands))
	}
	// I5 is the merged index of the paper.
	if got := strings.Join(cands[4].Columns, ","); got != "a,b,c,d,e,id" {
		t.Errorf("I5 = %s", got)
	}
}

func TestDefaultTPCH(t *testing.T) {
	o := DefaultTPCH()
	if o.NumBatches != 60 || o.BudgetFraction <= 1.0 {
		t.Errorf("defaults = %+v", o)
	}
	if o.Scale <= 0 {
		t.Error("scale missing")
	}
	_ = tpch.Scale(o.Scale)
}
