package storage

import (
	"fmt"

	"onlinetuner/internal/par"
)

// bulkLeafFill is the target entries per leaf for bulk-loaded trees —
// below Fanout so the tree can absorb inserts without immediate splits,
// matching the steady-state fill an insert-built tree converges to.
const bulkLeafFill = Fanout * 3 / 4

// SortEntries sorts entries into the tree's total order (key, then RID)
// using up to workers goroutines. The result is identical for every
// worker count: compareEntry is a strict total order, and the parallel
// sort is stable besides.
func SortEntries(entries []Entry, workers int) {
	par.SortStableFunc(entries, compareEntry, workers)
}

// SortEntriesPooled sorts like SortEntries but draws its workers from
// p's slot budget (non-blocking; nil or drained pool sorts
// sequentially), so index-build sorts share the process-wide bound with
// executing statements instead of assuming a full worker set.
func SortEntriesPooled(entries []Entry, p *par.Pool) {
	par.SortStablePooled(p, entries, compareEntry)
}

// BulkLoad constructs a B+-tree from entries, which must already be in
// compareEntry order (see SortEntries). It builds the leaf level in one
// left-to-right pass and stacks internal levels on top, so loading n
// entries is O(n) instead of the O(n log n) tree-insert path. An exact
// duplicate (same key and RID) is rejected with the same error Insert
// produces. The entry slice is not retained; keys are shared.
func BulkLoad(entries []Entry) (*BTree, error) {
	t := NewBTree()
	if len(entries) == 0 {
		return t, nil
	}
	var keyBytes int64
	var leaves []*node
	for _, b := range bulkChunks(len(entries)) {
		leaf := &node{leaf: true, entries: append([]Entry(nil), entries[b[0]:b[1]]...)}
		if len(leaves) > 0 {
			leaves[len(leaves)-1].next = leaf
		}
		leaves = append(leaves, leaf)
	}
	for i := 1; i < len(entries); i++ {
		if compareEntry(entries[i-1], entries[i]) >= 0 {
			if compareEntry(entries[i-1], entries[i]) == 0 {
				return nil, fmt.Errorf("storage: duplicate btree entry %v rid=%d", entries[i].Key, entries[i].RID)
			}
			return nil, fmt.Errorf("storage: bulk load input not sorted at %d", i)
		}
	}
	for _, e := range entries {
		keyBytes += int64(e.Key.Width()) + 8
	}
	// Stack internal levels: group children bulkLeafFill at a time;
	// keys[i] is the smallest entry of children[i+1], exactly the
	// separator Insert's splits would have produced.
	level := leaves
	height := 1
	for len(level) > 1 {
		var parents []*node
		for _, b := range bulkChunks(len(level)) {
			p := &node{leaf: false, children: append([]*node(nil), level[b[0]:b[1]]...)}
			for _, c := range p.children[1:] {
				p.keys = append(p.keys, smallestEntry(c))
			}
			parents = append(parents, p)
		}
		level = parents
		height++
	}
	t.root = level[0]
	t.height = height
	t.count.Store(int64(len(entries)))
	t.keyBytes.Store(keyBytes)
	return t, nil
}

// bulkChunks cuts n items into consecutive [lo, hi) ranges of
// bulkLeafFill items, except that a short final remainder is absorbed by
// splitting the last two chunks evenly — so every chunk but a lone first
// one holds at least minFill items, satisfying the tree's fill
// invariant (the same one Delete's rebalancing maintains).
func bulkChunks(n int) [][2]int {
	var out [][2]int
	for lo := 0; lo < n; lo += bulkLeafFill {
		hi := lo + bulkLeafFill
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	if k := len(out); k >= 2 {
		last := out[k-1]
		if last[1]-last[0] < minFill {
			// Rebalance the final two chunks: their combined size is in
			// (bulkLeafFill, bulkLeafFill+minFill), so both halves land
			// in [minFill, Fanout].
			lo, hi := out[k-2][0], last[1]
			mid := lo + (hi-lo)/2
			out[k-2] = [2]int{lo, mid}
			out[k-1] = [2]int{mid, hi}
		}
	}
	return out
}

// smallestEntry returns the leftmost leaf entry under n.
func smallestEntry(n *node) Entry {
	for !n.leaf {
		n = n.children[0]
	}
	return n.entries[0]
}
