// Package storage implements the physical storage engine: paged heap
// files, composite-key B+-trees, and a storage manager that tracks a
// global space budget, builds and drops index structures, and supports
// the suspend/restart index states used by the online tuner (Section 3.3
// of the paper). The engine is in-memory, but every structure carries an
// explicit 8 KB-page accounting model so that index sizes, storage
// constraints, and I/O-based cost estimates behave like an on-disk
// system.
package storage

import (
	"fmt"
	"sync/atomic"

	"onlinetuner/internal/datum"
	"onlinetuner/internal/fault"
)

// Fanout is the maximum number of entries per B+-tree node. It is chosen
// small enough to exercise multi-level trees in tests while keeping the
// in-memory representation compact.
const Fanout = 64

// RID identifies a heap row. RIDs are stable for the lifetime of a row.
type RID int64

// Entry is one B+-tree leaf entry: a composite key and the RID of the
// indexed heap row. Duplicate keys are allowed; (Key, RID) pairs are
// unique.
type Entry struct {
	Key datum.Row
	RID RID
}

// compareEntry orders entries by key, breaking ties by RID so the tree
// holds a strict total order.
func compareEntry(a, b Entry) int {
	if c := a.Key.Compare(b.Key); c != 0 {
		return c
	}
	switch {
	case a.RID < b.RID:
		return -1
	case a.RID > b.RID:
		return 1
	}
	return 0
}

type node struct {
	leaf     bool
	entries  []Entry // leaf payload
	keys     []Entry // internal separators: keys[i] is the smallest entry of children[i+1]
	children []*node
	next     *node // leaf sibling chain
}

// BTree is an in-memory B+-tree over composite datum keys with duplicate
// support. Structural operations (Insert/Delete/Seek/Scan) are not safe
// for concurrent mutation — callers serialize them via the engine's
// per-table statement locks and the storage manager's lock. The size
// counters (Len/KeyBytes) are atomic so the tuner can sample index sizes
// of tables it holds no statement lock on.
type BTree struct {
	root   *node
	height int
	count  atomic.Int64
	// keyBytes tracks total key payload bytes for page accounting.
	keyBytes atomic.Int64
	// faults is the optional injection layer consulted by Insert (page
	// allocation and leaf splits). Nil means no injection. Written only
	// while the tree is private or under the manager lock; read on
	// mutation paths, which hold the same locks.
	faults *fault.Injector
}

// NewBTree returns an empty tree.
func NewBTree() *BTree {
	return &BTree{root: &node{leaf: true}, height: 1}
}

// Len returns the number of entries.
func (t *BTree) Len() int { return int(t.count.Load()) }

// Height returns the number of levels (1 for a lone leaf).
func (t *BTree) Height() int { return t.height }

// KeyBytes returns the accounted key payload bytes.
func (t *BTree) KeyBytes() int64 { return t.keyBytes.Load() }

// Insert adds an entry. Inserting an exact duplicate (same key and RID)
// is an error: index maintenance must never double-insert a row.
//
// Insert is atomic under fault injection: allocation and split faults
// are consulted before any node is touched, so a failed Insert leaves
// the tree exactly as it was.
func (t *BTree) Insert(e Entry) error {
	return t.insertWith(e, t.faults)
}

// insertWith is Insert under an explicit injector; rollback paths pass
// nil so compensation can never itself fault.
func (t *BTree) insertWith(e Entry, inj *fault.Injector) error {
	if err := inj.Hit(fault.PageAlloc); err != nil {
		return err
	}
	newChild, sep, err := t.insert(t.root, e, inj)
	if err != nil {
		return err
	}
	if newChild != nil {
		root := &node{
			leaf:     false,
			keys:     []Entry{sep},
			children: []*node{t.root, newChild},
		}
		t.root = root
		t.height++
	}
	t.count.Add(1)
	t.keyBytes.Add(int64(e.Key.Width()) + 8)
	return nil
}

// insert descends into n; on split it returns the new right sibling and
// its separator entry.
func (t *BTree) insert(n *node, e Entry, inj *fault.Injector) (*node, Entry, error) {
	if n.leaf {
		pos, found := findEntry(n.entries, e)
		if found {
			return nil, Entry{}, fmt.Errorf("storage: duplicate btree entry %v rid=%d", e.Key, e.RID)
		}
		// A full leaf will split: consult the split fault before the
		// entry lands, so a refused split never strands an over-full
		// page.
		if len(n.entries) >= Fanout {
			if err := inj.Hit(fault.BTreeSplit); err != nil {
				return nil, Entry{}, err
			}
		}
		n.entries = append(n.entries, Entry{})
		copy(n.entries[pos+1:], n.entries[pos:])
		n.entries[pos] = e
		if len(n.entries) > Fanout {
			return t.splitLeaf(n)
		}
		return nil, Entry{}, nil
	}
	ci := childIndex(n.keys, e)
	newChild, sep, err := t.insert(n.children[ci], e, inj)
	if err != nil {
		return nil, Entry{}, err
	}
	if newChild == nil {
		return nil, Entry{}, nil
	}
	n.keys = append(n.keys, Entry{})
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = sep
	n.children = append(n.children, nil)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = newChild
	if len(n.children) > Fanout {
		return t.splitInternal(n)
	}
	return nil, Entry{}, nil
}

func (t *BTree) splitLeaf(n *node) (*node, Entry, error) {
	mid := len(n.entries) / 2
	right := &node{leaf: true, next: n.next}
	right.entries = append(right.entries, n.entries[mid:]...)
	n.entries = n.entries[:mid:mid]
	n.next = right
	return right, right.entries[0], nil
}

func (t *BTree) splitInternal(n *node) (*node, Entry, error) {
	midKey := len(n.keys) / 2
	sep := n.keys[midKey]
	right := &node{leaf: false}
	right.keys = append(right.keys, n.keys[midKey+1:]...)
	right.children = append(right.children, n.children[midKey+1:]...)
	n.keys = n.keys[:midKey:midKey]
	n.children = n.children[: midKey+1 : midKey+1]
	return right, sep, nil
}

// findEntry returns the insertion position of e in sorted entries and
// whether an exact (key, rid) match exists.
func findEntry(entries []Entry, e Entry) (int, bool) {
	lo, hi := 0, len(entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if compareEntry(entries[mid], e) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	found := lo < len(entries) && compareEntry(entries[lo], e) == 0
	return lo, found
}

// childIndex returns which child of an internal node e belongs to.
func childIndex(keys []Entry, e Entry) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if compareEntry(keys[mid], e) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Delete removes the entry with the given key and RID. It returns false
// if no such entry exists. Underflowed nodes are rebalanced by borrowing
// from or merging with siblings.
func (t *BTree) Delete(e Entry) bool {
	deleted := t.delete(t.root, e)
	if !deleted {
		return false
	}
	// Collapse the root when it has a single child.
	for !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
		t.height--
	}
	t.count.Add(-1)
	t.keyBytes.Add(-(int64(e.Key.Width()) + 8))
	return true
}

const minFill = Fanout / 4

func (t *BTree) delete(n *node, e Entry) bool {
	if n.leaf {
		pos, found := findEntry(n.entries, e)
		if !found {
			return false
		}
		n.entries = append(n.entries[:pos], n.entries[pos+1:]...)
		return true
	}
	ci := childIndex(n.keys, e)
	child := n.children[ci]
	if !t.delete(child, e) {
		return false
	}
	t.rebalance(n, ci)
	return true
}

// rebalance fixes up child ci of n if it underflowed.
func (t *BTree) rebalance(n *node, ci int) {
	child := n.children[ci]
	size := func(c *node) int {
		if c.leaf {
			return len(c.entries)
		}
		return len(c.children)
	}
	if size(child) >= minFill {
		return
	}
	// Try borrowing from the left sibling.
	if ci > 0 && size(n.children[ci-1]) > minFill {
		left := n.children[ci-1]
		if child.leaf {
			last := left.entries[len(left.entries)-1]
			left.entries = left.entries[:len(left.entries)-1]
			child.entries = append([]Entry{last}, child.entries...)
			n.keys[ci-1] = child.entries[0]
		} else {
			lk := len(left.keys)
			child.keys = append([]Entry{n.keys[ci-1]}, child.keys...)
			n.keys[ci-1] = left.keys[lk-1]
			left.keys = left.keys[:lk-1]
			lc := len(left.children)
			child.children = append([]*node{left.children[lc-1]}, child.children...)
			left.children = left.children[:lc-1]
		}
		return
	}
	// Try borrowing from the right sibling.
	if ci < len(n.children)-1 && size(n.children[ci+1]) > minFill {
		right := n.children[ci+1]
		if child.leaf {
			first := right.entries[0]
			right.entries = right.entries[1:]
			child.entries = append(child.entries, first)
			n.keys[ci] = right.entries[0]
		} else {
			child.keys = append(child.keys, n.keys[ci])
			n.keys[ci] = right.keys[0]
			right.keys = right.keys[1:]
			child.children = append(child.children, right.children[0])
			right.children = right.children[1:]
		}
		return
	}
	// Merge with a sibling.
	if ci > 0 {
		t.mergeChildren(n, ci-1)
	} else if ci < len(n.children)-1 {
		t.mergeChildren(n, ci)
	}
}

// mergeChildren merges child i+1 of n into child i.
func (t *BTree) mergeChildren(n *node, i int) {
	left, right := n.children[i], n.children[i+1]
	if left.leaf {
		left.entries = append(left.entries, right.entries...)
		left.next = right.next
	} else {
		left.keys = append(left.keys, n.keys[i])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// Iterator walks leaf entries in key order.
type Iterator struct {
	n   *node
	pos int
	// hi bounds the iteration: nil means unbounded. hiInc controls
	// inclusivity of the bound, compared on the key prefix of len(hi).
	hi    datum.Row
	hiInc bool
	done  bool
}

// Valid reports whether the iterator is positioned on an entry.
func (it *Iterator) Valid() bool {
	if it.done || it.n == nil || it.pos >= len(it.n.entries) {
		return false
	}
	if it.hi != nil {
		e := it.n.entries[it.pos]
		c := prefixCompare(e.Key, it.hi)
		if c > 0 || (c == 0 && !it.hiInc) {
			it.done = true
			return false
		}
	}
	return true
}

// Entry returns the current entry; call only when Valid.
func (it *Iterator) Entry() Entry { return it.n.entries[it.pos] }

// Next advances the iterator.
func (it *Iterator) Next() {
	it.pos++
	for it.n != nil && it.pos >= len(it.n.entries) {
		it.n = it.n.next
		it.pos = 0
	}
}

// prefixCompare compares key against bound on the first len(bound)
// components.
func prefixCompare(key, bound datum.Row) int {
	n := len(bound)
	if len(key) < n {
		n = len(key)
	}
	for i := 0; i < n; i++ {
		if c := key[i].Compare(bound[i]); c != 0 {
			return c
		}
	}
	return 0
}

// Scan returns an iterator over the whole tree in key order.
func (t *BTree) Scan() *Iterator {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	it := &Iterator{n: n}
	for it.n != nil && len(it.n.entries) == 0 {
		it.n = it.n.next
	}
	return it
}

// Seek returns an iterator positioned at the first entry whose key prefix
// is >= lo (or > lo when loInc is false), bounded above by hi/hiInc (nil
// hi means unbounded). Bounds are compared on the prefix of their own
// length, so a seek on the first k columns of a wider key works.
func (t *BTree) Seek(lo datum.Row, loInc bool, hi datum.Row, hiInc bool) *Iterator {
	n := t.root
	probe := Entry{Key: lo, RID: -1 << 62}
	for !n.leaf {
		n = n.children[childIndex(n.keys, probe)]
	}
	it := &Iterator{n: n, hi: hi, hiInc: hiInc}
	// Position within the leaf.
	lo2, hi2 := 0, len(n.entries)
	for lo2 < hi2 {
		mid := (lo2 + hi2) / 2
		c := prefixCompare(n.entries[mid].Key, lo)
		if c < 0 || (c == 0 && !loInc) {
			lo2 = mid + 1
		} else {
			hi2 = mid
		}
	}
	it.pos = lo2
	for it.n != nil && it.pos >= len(it.n.entries) {
		it.n = it.n.next
		it.pos = 0
	}
	return it
}

// LastLE returns the last entry (in key order) whose key prefix is <=
// bound, comparing on the first len(bound) key components; an empty
// bound selects the tree's rightmost entry. Because prefix order is
// monotone along the tree's full key order, the qualifying entries form
// a contiguous lower range and the result is found with one root-to-leaf
// descent (separator keys are lower bounds of their subtree, so a
// sibling fallback is taken only when a subtree proves empty of
// qualifying entries).
func (t *BTree) LastLE(bound datum.Row) (Entry, bool) {
	return lastLE(t.root, bound)
}

func lastLE(n *node, bound datum.Row) (Entry, bool) {
	if n.leaf {
		for i := len(n.entries) - 1; i >= 0; i-- {
			if prefixCompare(n.entries[i].Key, bound) <= 0 {
				return n.entries[i], true
			}
		}
		return Entry{}, false
	}
	// Child ci's entries are all >= keys[ci-1]; skip children whose whole
	// subtree is past the bound, then probe right-to-left.
	ci := len(n.children) - 1
	for ci > 0 && prefixCompare(n.keys[ci-1].Key, bound) > 0 {
		ci--
	}
	for ; ci >= 0; ci-- {
		if e, ok := lastLE(n.children[ci], bound); ok {
			return e, true
		}
	}
	return Entry{}, false
}

// Shard is one contiguous slice of a tree's key order, produced by
// Shards: an iterator positioned at the shard's first entry plus the
// exact number of entries the shard holds.
type Shard struct {
	It *Iterator
	N  int
}

// Shards cuts the tree's leaf chain into consecutive shards of at least
// perShard entries each (the last may be smaller), splitting only on
// leaf boundaries so every shard is a cheap iterator position. The
// decomposition is a pure function of tree contents and perShard — it
// does not depend on who consumes the shards or how fast — which is what
// lets parallel scans key per-shard fault draws deterministically.
// Concatenating the shards in order yields exactly Scan's entry stream.
func (t *BTree) Shards(perShard int) []Shard {
	if perShard < 1 {
		perShard = 1
	}
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	var shards []Shard
	var start *node
	run := 0
	for ; n != nil; n = n.next {
		if len(n.entries) == 0 {
			continue
		}
		if start == nil {
			start = n
		}
		run += len(n.entries)
		if run >= perShard {
			shards = append(shards, Shard{It: &Iterator{n: start}, N: run})
			start, run = nil, 0
		}
	}
	if start != nil {
		shards = append(shards, Shard{It: &Iterator{n: start}, N: run})
	}
	return shards
}

// checkInvariants validates tree ordering and structure; used by tests.
func (t *BTree) checkInvariants() error {
	var prev *Entry
	count := 0
	for it := t.Scan(); it.Valid(); it.Next() {
		e := it.Entry()
		if prev != nil && compareEntry(*prev, e) >= 0 {
			return fmt.Errorf("storage: btree order violated: %v >= %v", prev, e)
		}
		p := e
		prev = &p
		count++
	}
	if int64(count) != t.count.Load() {
		return fmt.Errorf("storage: btree count %d != iterated %d", t.count.Load(), count)
	}
	return nil
}
