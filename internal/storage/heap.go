package storage

import (
	"fmt"

	"onlinetuner/internal/datum"
)

// PageSize is the accounted page size in bytes (8 KB, as in SQL Server).
const PageSize = 8192

// FillFactor is the assumed page fill fraction for page-count accounting.
const FillFactor = 0.7

// RowOverhead is the accounted per-row overhead of heap storage (tuple
// header, slot pointer, alignment). It makes narrow secondary indexes
// meaningfully smaller than the base table, as in real systems.
const RowOverhead = 24

// PagesFor converts a byte payload into an accounted page count (at least
// one page for any non-empty payload).
func PagesFor(bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	f := float64(PageSize) * FillFactor
	per := int64(f)
	return (bytes + per - 1) / per
}

// Heap is a table's row store. Rows are addressed by stable RIDs; deleted
// slots are tombstoned and recycled. A heap scan visits rows in RID
// order, which approximates physical order.
type Heap struct {
	rows  []datum.Row // nil slots are tombstones
	free  []RID
	count int
	bytes int64
}

// NewHeap returns an empty heap.
func NewHeap() *Heap { return &Heap{} }

// Len returns the number of live rows.
func (h *Heap) Len() int { return h.count }

// Bytes returns the accounted live payload bytes.
func (h *Heap) Bytes() int64 { return h.bytes }

// Pages returns the accounted page count.
func (h *Heap) Pages() int64 { return PagesFor(h.bytes) }

// Insert stores a row and returns its RID.
func (h *Heap) Insert(r datum.Row) RID {
	h.count++
	h.bytes += int64(r.Width()) + RowOverhead
	if n := len(h.free); n > 0 {
		rid := h.free[n-1]
		h.free = h.free[:n-1]
		h.rows[rid] = r
		return rid
	}
	h.rows = append(h.rows, r)
	return RID(len(h.rows) - 1)
}

// Get returns the row at rid, or nil if deleted/out of range.
func (h *Heap) Get(rid RID) datum.Row {
	if rid < 0 || int(rid) >= len(h.rows) {
		return nil
	}
	return h.rows[rid]
}

// Delete removes the row at rid. It returns an error if no live row is
// there.
func (h *Heap) Delete(rid RID) error {
	r := h.Get(rid)
	if r == nil {
		return fmt.Errorf("storage: delete of missing rid %d", rid)
	}
	h.bytes -= int64(r.Width()) + RowOverhead
	h.count--
	h.rows[rid] = nil
	h.free = append(h.free, rid)
	return nil
}

// Update replaces the row at rid, returning the old row.
func (h *Heap) Update(rid RID, r datum.Row) (datum.Row, error) {
	old := h.Get(rid)
	if old == nil {
		return nil, fmt.Errorf("storage: update of missing rid %d", rid)
	}
	h.bytes += int64(r.Width()) - int64(old.Width())
	h.rows[rid] = r
	return old, nil
}

// Scan calls fn for every live row in RID order; fn returning false stops
// the scan.
func (h *Heap) Scan(fn func(rid RID, r datum.Row) bool) {
	for i, r := range h.rows {
		if r == nil {
			continue
		}
		if !fn(RID(i), r) {
			return
		}
	}
}
