package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"onlinetuner/internal/datum"
)

// PageSize is the accounted page size in bytes (8 KB, as in SQL Server).
const PageSize = 8192

// FillFactor is the assumed page fill fraction for page-count accounting.
const FillFactor = 0.7

// RowOverhead is the accounted per-row overhead of heap storage (tuple
// header, slot pointer, alignment). It makes narrow secondary indexes
// meaningfully smaller than the base table, as in real systems.
const RowOverhead = 24

// PagesFor converts a byte payload into an accounted page count (at least
// one page for any non-empty payload).
func PagesFor(bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	f := float64(PageSize) * FillFactor
	per := int64(f)
	return (bytes + per - 1) / per
}

// Heap is a table's row store. Rows are addressed by stable RIDs; deleted
// slots are tombstoned and recycled. A heap scan visits rows in RID
// order, which approximates physical order.
//
// Concurrency: the heap is internally synchronized. Mutations take the
// write lock; Get and Scan take the read lock, so readers see a
// consistent snapshot for the duration of one call. Len/Bytes/Pages are
// atomic counters readable without any lock — the tuner samples sizes of
// tables it holds no statement lock on, and an approximate value is fine
// there. Rows handed out are shared, never mutated in place: Update
// replaces the whole row, so a reference obtained under the read lock
// stays valid (copy-on-write at row granularity).
type Heap struct {
	mu    sync.RWMutex
	rows  []datum.Row // nil slots are tombstones
	free  []RID
	count atomic.Int64
	bytes atomic.Int64
}

// NewHeap returns an empty heap.
func NewHeap() *Heap { return &Heap{} }

// Len returns the number of live rows.
func (h *Heap) Len() int { return int(h.count.Load()) }

// Bytes returns the accounted live payload bytes.
func (h *Heap) Bytes() int64 { return h.bytes.Load() }

// Pages returns the accounted page count.
func (h *Heap) Pages() int64 { return PagesFor(h.bytes.Load()) }

// Insert stores a row and returns its RID.
func (h *Heap) Insert(r datum.Row) RID {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count.Add(1)
	h.bytes.Add(int64(r.Width()) + RowOverhead)
	if n := len(h.free); n > 0 {
		rid := h.free[n-1]
		h.free = h.free[:n-1]
		h.rows[rid] = r
		return rid
	}
	h.rows = append(h.rows, r)
	return RID(len(h.rows) - 1)
}

// InsertAt restores a row at a tombstoned RID — the inverse of Delete,
// used only by statement rollback. The RID must currently be free.
func (h *Heap) InsertAt(rid RID, r datum.Row) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if rid < 0 || int(rid) >= len(h.rows) || h.rows[rid] != nil {
		return fmt.Errorf("storage: restore at occupied or invalid rid %d", rid)
	}
	for i := len(h.free) - 1; i >= 0; i-- {
		if h.free[i] == rid {
			h.free = append(h.free[:i], h.free[i+1:]...)
			break
		}
	}
	h.rows[rid] = r
	h.count.Add(1)
	h.bytes.Add(int64(r.Width()) + RowOverhead)
	return nil
}

// Get returns the row at rid, or nil if deleted/out of range.
func (h *Heap) Get(rid RID) datum.Row {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.getLocked(rid)
}

func (h *Heap) getLocked(rid RID) datum.Row {
	if rid < 0 || int(rid) >= len(h.rows) {
		return nil
	}
	return h.rows[rid]
}

// Delete removes the row at rid. It returns an error if no live row is
// there.
func (h *Heap) Delete(rid RID) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	r := h.getLocked(rid)
	if r == nil {
		return fmt.Errorf("storage: delete of missing rid %d", rid)
	}
	h.bytes.Add(-(int64(r.Width()) + RowOverhead))
	h.count.Add(-1)
	h.rows[rid] = nil
	h.free = append(h.free, rid)
	return nil
}

// Update replaces the row at rid, returning the old row.
func (h *Heap) Update(rid RID, r datum.Row) (datum.Row, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	old := h.getLocked(rid)
	if old == nil {
		return nil, fmt.Errorf("storage: update of missing rid %d", rid)
	}
	h.bytes.Add(int64(r.Width()) - int64(old.Width()))
	h.rows[rid] = r
	return old, nil
}

// Scan calls fn for every live row in RID order; fn returning false stops
// the scan. The read lock is held for the whole scan, so fn must not
// mutate this heap (collect first, then mutate — as the executor's DML
// operators do).
func (h *Heap) Scan(fn func(rid RID, r datum.Row) bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	for i, r := range h.rows {
		if r == nil {
			continue
		}
		if !fn(RID(i), r) {
			return
		}
	}
}

// Slots returns the current slot-array length — the exclusive upper
// bound of the RID space. Together with ScanRange it lets a caller split
// a full scan into fixed-size RID ranges (morsels) whose union visits
// exactly the rows one Scan would, in the same order.
func (h *Heap) Slots() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.rows)
}

// ScanRange calls fn for every live row with lo <= rid < hi, in RID
// order; fn returning false stops the scan. Like Scan, the read lock is
// held for the whole call, so fn must not mutate this heap. Slots past
// the current slot-array length are silently empty, so a range computed
// from a stale Slots() is safe.
func (h *Heap) ScanRange(lo, hi RID, fn func(rid RID, r datum.Row) bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if lo < 0 {
		lo = 0
	}
	if int(hi) > len(h.rows) {
		hi = RID(len(h.rows))
	}
	for i := lo; i < hi; i++ {
		if r := h.rows[i]; r != nil {
			if !fn(i, r) {
				return
			}
		}
	}
}

// ScanRangeRows appends every live row with lo <= rid < hi to buf, in
// RID order, and returns the extended slice — the columnar scan
// emission: one lock round per morsel and no per-row callback, so a
// whole morsel of row references reaches the vectorized filter at once.
// Rows are shared references (safe: rows are copy-on-write at row
// granularity).
func (h *Heap) ScanRangeRows(lo, hi RID, buf []datum.Row) []datum.Row {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if lo < 0 {
		lo = 0
	}
	if int(hi) > len(h.rows) {
		hi = RID(len(h.rows))
	}
	for i := lo; i < hi; i++ {
		if r := h.rows[i]; r != nil {
			buf = append(buf, r)
		}
	}
	return buf
}

// Snapshot returns a point-in-time copy of the live (rid, row) pairs.
// Rows are shared references (safe: rows are immutable once stored); the
// slice itself is private to the caller. Background index builders use
// this to read the table once and then work entirely off the hot path.
func (h *Heap) Snapshot() []HeapRow {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]HeapRow, 0, h.count.Load())
	for i, r := range h.rows {
		if r == nil {
			continue
		}
		out = append(out, HeapRow{RID: RID(i), Row: r})
	}
	return out
}

// HeapRow is one live heap row with its RID, as captured by Snapshot.
type HeapRow struct {
	RID RID
	Row datum.Row
}

// dumpState captures the heap's full physical state for a checkpoint:
// slot-array length, live rows, and the free list in its exact order
// (inserts pop from the tail, so the order determines which RIDs future
// inserts receive).
func (h *Heap) dumpState() (slots int, rows []HeapRow, free []RID) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	slots = len(h.rows)
	rows = make([]HeapRow, 0, h.count.Load())
	for i, r := range h.rows {
		if r != nil {
			rows = append(rows, HeapRow{RID: RID(i), Row: r})
		}
	}
	free = append([]RID(nil), h.free...)
	return slots, rows, free
}

// restoreState overwrites the heap with checkpoint state — the inverse
// of dumpState. Every slot not covered by rows must appear in free
// exactly once, so the restored heap assigns the same RIDs to future
// inserts as the pre-checkpoint heap would have.
func (h *Heap) restoreState(slots int, rows []HeapRow, free []RID) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	next := make([]datum.Row, slots)
	var count, bytes int64
	for _, hr := range rows {
		if hr.Row == nil || next[hr.RID] != nil {
			return fmt.Errorf("storage: heap restore: nil or duplicate row at rid %d", hr.RID)
		}
		next[hr.RID] = hr.Row
		count++
		bytes += int64(hr.Row.Width()) + RowOverhead
	}
	for _, rid := range free {
		if next[rid] != nil {
			return fmt.Errorf("storage: heap restore: free rid %d holds a row", rid)
		}
	}
	if int64(slots) != count+int64(len(free)) {
		return fmt.Errorf("storage: heap restore: %d slots != %d rows + %d free", slots, count, len(free))
	}
	h.rows = next
	h.free = append([]RID(nil), free...)
	h.count.Store(count)
	h.bytes.Store(bytes)
	return nil
}
