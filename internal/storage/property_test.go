package storage

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/datum"
	"onlinetuner/internal/fault"
)

// This file holds the model-based property tests for the storage layer:
// randomized DML/DDL sequences run against the real manager under
// injected faults, mirrored into a trivial in-memory model. After every
// operation the outcome must agree with the model (all-or-nothing: a
// failed op changes nothing), and the structural invariant checkers
// must pass throughout.

// propModel mirrors the live rows the manager should hold.
type propModel struct {
	rows map[RID]datum.Row
}

// TestBTreePropertyUnderFaults drives a bare B+-tree with random
// inserts and deletes under alloc/split faults and checks the full
// structural invariant set after every operation.
func TestBTreePropertyUnderFaults(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		rng := rand.New(rand.NewSource(seed))
		inj := fault.New(uint64(seed)).
			Plan(fault.PageAlloc, fault.Rule{Prob: 0.02}).
			Plan(fault.BTreeSplit, fault.Rule{Prob: 0.2})
		inj.Arm()
		tree := NewBTree()
		tree.faults = inj

		entryKey := func(e Entry) string {
			return fmt.Sprintf("%v|%d", e.Key, e.RID)
		}
		model := map[string]bool{}
		var present []Entry
		for op := 0; op < 4000; op++ {
			if len(present) == 0 || rng.Intn(3) != 0 {
				e := Entry{
					Key: datum.Row{datum.NewInt(rng.Int63n(500)), datum.NewInt(rng.Int63n(1000))},
					RID: RID(op),
				}
				err := tree.Insert(e)
				if err == nil {
					model[entryKey(e)] = true
					present = append(present, e)
				} else if !fault.Is(err) {
					t.Fatalf("seed %d op %d: unexpected insert error: %v", seed, op, err)
				}
			} else {
				i := rng.Intn(len(present))
				e := present[i]
				if !tree.Delete(e) {
					t.Fatalf("seed %d op %d: delete of present entry %v failed", seed, op, e)
				}
				delete(model, entryKey(e))
				present[i] = present[len(present)-1]
				present = present[:len(present)-1]
			}
			if op%97 == 0 {
				if err := tree.CheckInvariants(); err != nil {
					t.Fatalf("seed %d op %d: %v", seed, op, err)
				}
			}
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Fatalf("seed %d final: %v", seed, err)
		}
		if tree.Len() != len(model) {
			t.Fatalf("seed %d: tree has %d entries, model %d", seed, tree.Len(), len(model))
		}
		for it := tree.Scan(); it.Valid(); it.Next() {
			if !model[entryKey(it.Entry())] {
				t.Fatalf("seed %d: tree holds entry %v not in model", seed, it.Entry())
			}
		}
		if inj.FiredTotal() == 0 {
			t.Fatalf("seed %d: no faults fired; schedule too weak to test anything", seed)
		}
	}
}

// TestManagerPropertyUnderFaults runs a randomized DML + index-DDL
// sequence against the manager under write/alloc/split faults. The
// all-or-nothing contract is checked op by op against a model, and
// CheckConsistency validates cross-structure agreement throughout.
func TestManagerPropertyUnderFaults(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		seed := seed
		rng := rand.New(rand.NewSource(seed))
		cat, m := newTestDB(t)
		inj := fault.New(uint64(seed)).
			Plan(fault.PageWrite, fault.Rule{Prob: 0.05}).
			Plan(fault.PageAlloc, fault.Rule{Prob: 0.01}).
			Plan(fault.BTreeSplit, fault.Rule{Prob: 0.3}).
			Plan(fault.BuildStep, fault.Rule{Prob: 0.001})
		m.SetFaults(inj)
		inj.Arm()

		// Two secondary indexes so every DML touches several trees and a
		// mid-loop fault has partial state to roll back.
		ixA := &catalog.Index{Table: "R", Name: "ix_a", Columns: []string{"a"}}
		ixB := &catalog.Index{Table: "R", Name: "ix_ab", Columns: []string{"a", "b"}}
		for _, ix := range []*catalog.Index{ixA, ixB} {
			if err := cat.AddIndex(ix); err != nil {
				t.Fatal(err)
			}
		}
		buildUntilOK := func(ix *catalog.Index) {
			for {
				if _, err := m.BuildIndex(ix); err == nil {
					return
				} else if !fault.Is(err) {
					t.Fatalf("seed %d: build %s: %v", seed, ix.Name, err)
				}
			}
		}
		buildUntilOK(ixA)
		buildUntilOK(ixB)

		model := propModel{rows: map[RID]datum.Row{}}
		var rids []RID
		nextID := int64(0)
		failed, applied := 0, 0
		for op := 0; op < 3000; op++ {
			switch r := rng.Intn(10); {
			case r < 5 || len(rids) == 0: // insert
				nextID++
				row := row(nextID, rng.Int63n(200), rng.Int63n(1000))
				rid, _, err := m.Insert("R", row)
				if err != nil {
					if !fault.Is(err) {
						t.Fatalf("seed %d op %d: insert: %v", seed, op, err)
					}
					failed++
					break
				}
				applied++
				model.rows[rid] = row
				rids = append(rids, rid)
			case r < 7: // delete
				i := rng.Intn(len(rids))
				rid := rids[i]
				if _, err := m.Delete("R", rid); err != nil {
					if !fault.Is(err) {
						t.Fatalf("seed %d op %d: delete: %v", seed, op, err)
					}
					failed++
					break
				}
				applied++
				delete(model.rows, rid)
				rids[i] = rids[len(rids)-1]
				rids = rids[:len(rids)-1]
			case r < 9: // update
				rid := rids[rng.Intn(len(rids))]
				old := model.rows[rid]
				newRow := row(old[0].Int(), rng.Int63n(200), rng.Int63n(1000))
				if _, err := m.Update("R", rid, newRow); err != nil {
					if !fault.Is(err) {
						t.Fatalf("seed %d op %d: update: %v", seed, op, err)
					}
					failed++
					break
				}
				applied++
				model.rows[rid] = newRow
			default: // index DDL churn: suspend → restart
				if err := m.SuspendIndex(ixA.ID()); err != nil {
					break
				}
				for {
					if _, err := m.RestartIndex(ixA.ID()); err == nil {
						break
					} else if !fault.Is(err) {
						t.Fatalf("seed %d op %d: restart: %v", seed, op, err)
					}
				}
			}
			if op%211 == 0 {
				if err := m.CheckConsistency(); err != nil {
					t.Fatalf("seed %d op %d: %v", seed, op, err)
				}
			}
		}
		if failed == 0 {
			t.Fatalf("seed %d: no faulted ops; schedule too weak", seed)
		}
		if applied == 0 {
			t.Fatalf("seed %d: every op faulted; schedule too strong", seed)
		}
		if err := m.CheckConsistency(); err != nil {
			t.Fatalf("seed %d final: %v", seed, err)
		}
		// The surviving rows must be exactly the model's.
		h := m.Heap("R")
		if h.Len() != len(model.rows) {
			t.Fatalf("seed %d: heap has %d rows, model %d", seed, h.Len(), len(model.rows))
		}
		h.Scan(func(rid RID, r datum.Row) bool {
			want, ok := model.rows[rid]
			if !ok {
				t.Fatalf("seed %d: heap holds rid %d not in model", seed, rid)
			}
			if want.Compare(r) != 0 {
				t.Fatalf("seed %d: rid %d holds %v, want %v", seed, rid, r, want)
			}
			return true
		})
	}
}

// TestMidBuildFaultLeavesNoTrace injects a fault mid-way through an
// online build (snapshot phase, then delta phase) and asserts the abort
// path leaves no state behind: no index entry, reservation released,
// consistency clean.
func TestMidBuildFaultLeavesNoTrace(t *testing.T) {
	for _, site := range []fault.Site{fault.BuildStep, fault.BuildFinish} {
		cat, m := newTestDB(t)
		for i := int64(0); i < 500; i++ {
			if _, _, err := m.Insert("R", row(i, i%7, i%13)); err != nil {
				t.Fatal(err)
			}
		}
		ix := &catalog.Index{Table: "R", Name: "ix_fail", Columns: []string{"a"}}
		if err := cat.AddIndex(ix); err != nil {
			t.Fatal(err)
		}
		inj := fault.New(1).Plan(site, fault.Rule{Prob: 1, After: 20, Count: 1})
		m.SetFaults(inj)
		inj.Arm()

		before := m.ConfigVersion()
		b, err := m.StartBuild(ix)
		if err != nil {
			t.Fatalf("%s: StartBuild: %v", site, err)
		}
		// DML during the build populates the delta log (the BuildFinish
		// case needs >20 delta ops for its fault to land mid-replay).
		for i := int64(0); i < 60; i++ {
			if _, _, err := m.Insert("R", row(1000+i, i, i)); err != nil {
				t.Fatal(err)
			}
		}
		runErr := b.Run(context.Background())
		if site == fault.BuildStep {
			if !fault.Is(runErr) {
				t.Fatalf("BuildStep: Run err = %v, want injected fault", runErr)
			}
		} else {
			if runErr != nil {
				t.Fatalf("BuildFinish: Run err = %v", runErr)
			}
			if _, err := m.FinishBuild(b); !fault.Is(err) {
				t.Fatalf("BuildFinish: FinishBuild err = %v, want injected fault", err)
			}
		}
		m.AbortBuild(b)
		if err := cat.DropIndex(ix.Name); err != nil {
			t.Fatal(err)
		}
		if m.Index(ix.ID()) != nil {
			t.Fatalf("%s: aborted index still materialized", site)
		}
		if m.ConfigVersion() != before {
			t.Fatalf("%s: aborted build bumped ConfigVersion %d -> %d", site, before, m.ConfigVersion())
		}
		if used := m.UsedBytes(); used != 0 {
			t.Fatalf("%s: aborted build leaked %d reserved bytes", site, used)
		}
		if err := m.CheckConsistency(); err != nil {
			t.Fatalf("%s: %v", site, err)
		}
	}
}
