package storage

import (
	"context"
	"fmt"
	"strings"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/fault"
	"onlinetuner/internal/wal"
)

// This file implements online (background) index creation, the real
// mechanism behind the paper's Section 3.3 asynchronous-build
// refinement. The protocol is the classic snapshot-plus-side-log online
// build:
//
//  1. StartBuild atomically (under the manager lock) registers the index
//     in StateBuilding, reserves its estimated size against the budget,
//     and snapshots the table's live rows. From this instant every DML
//     statement appends the index's key changes to a side delta log
//     instead of touching a tree.
//  2. Build.Run constructs the B+-tree from the snapshot with NO locks
//     held — the query-serving path keeps running. Run honors context
//     cancellation so the tuner can abort a build whose benefit updates
//     have eroded (the paper's abort rule).
//  3. FinishBuild replays the delta log into the new tree and publishes
//     it atomically: one state transition under the manager lock flips
//     the index to StateActive with a tree that reflects every committed
//     row.
//
// Because the snapshot and the start of delta logging happen under one
// critical section, every row change is captured exactly once: either in
// the snapshot or in the log, never both and never neither.

// deltaOp is one logged index-key change captured while building.
type deltaOp struct {
	del bool
	e   Entry
}

// buildDelta is the side log of DML changes missed by an in-flight
// build. Guarded by the manager lock (DML paths already hold it).
type buildDelta struct {
	ops []deltaOp
}

func (d *buildDelta) log(del bool, e Entry) {
	d.ops = append(d.ops, deltaOp{del: del, e: e})
}

// unlog drops the n most recently logged ops; DML rollback uses it to
// retract delta entries from a statement that failed mid-maintenance.
func (d *buildDelta) unlog(n int) {
	d.ops = d.ops[:len(d.ops)-n]
}

// Build is the handle for one background index build, returned by
// StartBuild. Exactly one goroutine may call Run; Finish/Abort are then
// called by the coordinating tuner.
type Build struct {
	m     *Manager
	pi    *PhysicalIndex
	ix    *catalog.Index
	snap  []HeapRow
	tree  *BTree
	stats BuildStats
}

// Def returns the definition of the index being built.
func (b *Build) Def() *catalog.Index { return b.ix }

// SnapshotRows returns how many rows the build snapshot captured.
func (b *Build) SnapshotRows() int { return len(b.snap) }

// StartBuild begins an online build of a secondary index: it registers
// the index in StateBuilding, starts delta logging, and captures the row
// snapshot, all in one critical section. The returned handle's Run must
// be called (typically on a background goroutine) before FinishBuild.
func (m *Manager) StartBuild(ix *catalog.Index) (*Build, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.indexes[ix.ID()]; dup {
		return nil, fmt.Errorf("storage: index %s already materialized", ix.Name)
	}
	ts := m.tables[strings.ToLower(ix.Table)]
	if ts == nil {
		return nil, fmt.Errorf("storage: table %s not materialized", ix.Table)
	}
	if err := m.faults.Load().Hit(fault.PageAlloc); err != nil {
		return nil, err
	}
	est := int64(ts.def.ColumnsWidth(ix.Columns)+8) * int64(ts.heap.Len())
	if m.budget > 0 && m.usedLocked()+est > m.budget {
		return nil, &ErrBudget{Index: ix.Name, Need: est, Free: m.budget - m.usedLocked()}
	}

	stats := BuildStats{Rows: int64(ts.heap.Len())}
	if source := m.sortAvoidingSourceLocked(ix); source != nil {
		stats.SourceIndex = source.Def.Name
		stats.SourcePages = source.Pages()
		if source.Def.Primary {
			stats.SourcePages = ts.heap.Pages()
		}
	} else {
		stats.SourcePages = ts.heap.Pages()
		stats.Sorted = true
	}

	// The BuildStart record makes an in-flight build visible to
	// recovery: a crash between here and the publish (IndexCreate) or
	// abort record leaves a dangling BuildStart, which recovery resumes
	// or cleanly abandons.
	if err := m.logLifecycleLocked(&wal.Record{Kind: wal.KindBuildStart, Index: indexDefFor(ix)}); err != nil {
		return nil, err
	}
	pi := &PhysicalIndex{Def: ix}
	pi.colOrds = ordinalsFor(ts.def, ix)
	pi.estBytes.Store(est)
	pi.building = &buildDelta{}
	pi.setState(StateBuilding)
	b := &Build{m: m, pi: pi, ix: ix, snap: ts.heap.Snapshot(), stats: stats}
	m.indexes[ix.ID()] = pi
	return b, nil
}

// Run constructs the B+-tree from the snapshot. It holds no locks —
// queries and DML proceed concurrently — and checks ctx periodically so
// an eroded build can be cancelled mid-flight. A BuildStep fault (one
// draw per snapshot row, during entry extraction) models a mid-snapshot
// I/O failure: Run returns the error, the private entries are discarded,
// and the caller is expected to AbortBuild.
//
// The sort runs on up to Manager.Workers() goroutines (the parallel
// stable merge sort in internal/par) and the tree is assembled with a
// linear bulk load instead of n tree inserts; the resulting tree holds
// exactly the same entry sequence for every worker count.
func (b *Build) Run(ctx context.Context) error {
	const cancelCheckEvery = 256
	inj := b.m.Faults()
	entries := make([]Entry, 0, len(b.snap))
	for i, hr := range b.snap {
		if i%cancelCheckEvery == 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		if err := inj.Hit(fault.BuildStep); err != nil {
			return err
		}
		entries = append(entries, Entry{Key: keyFor(b.pi.colOrds, hr.Row), RID: hr.RID})
	}
	SortEntriesPooled(entries, b.m.Pool())
	if ctx.Err() != nil {
		return ctx.Err()
	}
	tree, err := BulkLoad(entries)
	if err != nil {
		return err
	}
	b.tree = tree
	b.snap = nil
	return nil
}

// FinishBuild replays the DML delta accumulated during the build into
// the freshly built tree and atomically publishes the index as active.
// It must be called after Run returned nil.
func (m *Manager) FinishBuild(b *Build) (*BuildStats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.indexes[b.ix.ID()] != b.pi {
		return nil, fmt.Errorf("storage: build of %s was aborted or superseded", b.ix.Name)
	}
	if b.tree == nil {
		return nil, fmt.Errorf("storage: build of %s has not run", b.ix.Name)
	}
	// A BuildFinish fault (one draw per delta op) models a mid-delta
	// failure. The index is still StateBuilding and unpublished when it
	// fires, so the caller aborts with no visible state change; the
	// partially replayed private tree is simply discarded.
	inj := m.faults.Load()
	for _, op := range b.pi.building.ops {
		if err := inj.Hit(fault.BuildFinish); err != nil {
			return nil, err
		}
		if op.del {
			if !b.tree.Delete(op.e) {
				return nil, fmt.Errorf("storage: build of %s: delta delete missed rid %d", b.ix.Name, op.e.RID)
			}
		} else {
			if err := b.tree.insertWith(op.e, nil); err != nil {
				return nil, err
			}
		}
	}
	// Publish record before the publish mutations: after the append
	// nothing can fail, so the log and the in-memory state agree. A
	// failed append leaves the index StateBuilding and unpublished; the
	// caller aborts, and recovery treats the dangling BuildStart as an
	// abandoned build.
	if err := m.logLifecycleLocked(&wal.Record{Kind: wal.KindIndexCreate, Index: indexDefFor(b.ix), Published: true}); err != nil {
		return nil, err
	}
	b.pi.building = nil
	b.tree.faults = inj
	b.pi.tree.Store(b.tree)
	b.pi.estBytes.Store(0)
	b.pi.setState(StateActive)
	b.stats.NewPages = b.pi.Pages()
	stats := b.stats
	m.configVersion.Add(1)
	return &stats, nil
}

// AbortBuild discards an in-flight build: the building index entry and
// its delta log are dropped, releasing the budget reservation. Safe to
// call whether or not Run has completed or was cancelled.
func (m *Manager) AbortBuild(b *Build) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.indexes[b.ix.ID()] == b.pi {
		delete(m.indexes, b.ix.ID())
		// Best-effort: a lost abort record is harmless — recovery
		// abandons any BuildStart with no matching publish or abort.
		_ = m.logLifecycleLocked(&wal.Record{Kind: wal.KindBuildAbort, Index: indexDefFor(b.ix)})
	}
}
