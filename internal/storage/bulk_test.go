package storage

import (
	"math/rand"
	"testing"

	"onlinetuner/internal/datum"
)

// randomEntries returns n entries with heavy key duplication (RIDs are
// unique, so the set is valid for a tree).
func randomEntries(n int, seed int64) []Entry {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Entry, n)
	for i := range out {
		out[i] = Entry{
			Key: datum.Row{datum.NewInt(int64(rng.Intn(n / 8))), datum.NewString("k")},
			RID: RID(i),
		}
	}
	return out
}

func TestBulkLoadMatchesInsertBuiltTree(t *testing.T) {
	for _, n := range []int{0, 1, 5, Fanout, Fanout + 1, bulkLeafFill + 1, 2*bulkLeafFill + 3, 1000, 20_000} {
		entries := randomEntries(max(n, 8), 42)[:n]
		ins := NewBTree()
		for _, e := range entries {
			if err := ins.Insert(e); err != nil {
				t.Fatal(err)
			}
		}
		sorted := append([]Entry(nil), entries...)
		for _, workers := range []int{1, 4} {
			s2 := append([]Entry(nil), sorted...)
			SortEntries(s2, workers)
			bulk, err := BulkLoad(s2)
			if err != nil {
				t.Fatal(err)
			}
			if err := bulk.CheckInvariants(); err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			if bulk.Len() != ins.Len() || bulk.KeyBytes() != ins.KeyBytes() {
				t.Fatalf("n=%d: bulk len/bytes %d/%d != insert-built %d/%d",
					n, bulk.Len(), bulk.KeyBytes(), ins.Len(), ins.KeyBytes())
			}
			bi, ii := bulk.Scan(), ins.Scan()
			for ii.Valid() {
				if !bi.Valid() || compareEntry(bi.Entry(), ii.Entry()) != 0 {
					t.Fatalf("n=%d: iteration order diverges", n)
				}
				bi.Next()
				ii.Next()
			}
			if bi.Valid() {
				t.Fatalf("n=%d: bulk tree has extra entries", n)
			}
		}
	}
}

func TestBulkLoadRejectsDuplicates(t *testing.T) {
	e := Entry{Key: datum.Row{datum.NewInt(1)}, RID: 7}
	if _, err := BulkLoad([]Entry{e, e}); err == nil {
		t.Fatal("duplicate (key, rid) must be rejected")
	}
}

func TestBulkLoadedTreeSupportsMutation(t *testing.T) {
	entries := randomEntries(5000, 9)
	SortEntries(entries, 4)
	tr, err := BulkLoad(entries)
	if err != nil {
		t.Fatal(err)
	}
	// Insert fresh RIDs and delete originals; the tree must stay valid.
	for i := 0; i < 500; i++ {
		if err := tr.Insert(Entry{Key: entries[i].Key, RID: RID(100_000 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		if !tr.Delete(entries[i*3]) {
			t.Fatalf("delete of loaded entry %d failed", i*3)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHeapScanRangeCoversScan(t *testing.T) {
	h := NewHeap()
	for i := 0; i < 1000; i++ {
		h.Insert(datum.Row{datum.NewInt(int64(i))})
	}
	// Punch tombstones so ranges see gaps.
	for i := 0; i < 1000; i += 7 {
		if err := h.Delete(RID(i)); err != nil {
			t.Fatal(err)
		}
	}
	var whole []RID
	h.Scan(func(rid RID, r datum.Row) bool { whole = append(whole, rid); return true })
	var pieces []RID
	slots := h.Slots()
	const step = 64
	for lo := 0; lo < slots; lo += step {
		h.ScanRange(RID(lo), RID(lo+step), func(rid RID, r datum.Row) bool {
			pieces = append(pieces, rid)
			return true
		})
	}
	if len(whole) != len(pieces) {
		t.Fatalf("ScanRange union %d rids != Scan %d", len(pieces), len(whole))
	}
	for i := range whole {
		if whole[i] != pieces[i] {
			t.Fatalf("rid %d: %d != %d", i, whole[i], pieces[i])
		}
	}
	// Out-of-range and early-stop behavior.
	h.ScanRange(RID(slots), RID(slots+100), func(RID, datum.Row) bool {
		t.Fatal("range past Slots must be empty")
		return true
	})
	n := 0
	h.ScanRange(0, RID(slots), func(RID, datum.Row) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d rows, want 3", n)
	}
}

func TestBTreeShardsPartitionScan(t *testing.T) {
	entries := randomEntries(10_000, 3)
	SortEntries(entries, 2)
	tr, err := BulkLoad(entries)
	if err != nil {
		t.Fatal(err)
	}
	var whole []Entry
	for it := tr.Scan(); it.Valid(); it.Next() {
		whole = append(whole, it.Entry())
	}
	for _, per := range []int{1, 100, 4096, 1 << 20} {
		shards := tr.Shards(per)
		var got []Entry
		total := 0
		for _, sh := range shards {
			total += sh.N
			it := sh.It
			for i := 0; i < sh.N; i++ {
				if !it.Valid() {
					t.Fatalf("per=%d: shard ended early at %d/%d", per, i, sh.N)
				}
				got = append(got, it.Entry())
				it.Next()
			}
		}
		if total != len(whole) || len(got) != len(whole) {
			t.Fatalf("per=%d: shards cover %d entries, want %d", per, len(got), len(whole))
		}
		for i := range whole {
			if compareEntry(whole[i], got[i]) != 0 {
				t.Fatalf("per=%d: entry %d differs", per, i)
			}
		}
	}
	if got := NewBTree().Shards(10); len(got) != 0 {
		t.Fatalf("empty tree shards = %d, want 0", len(got))
	}
}
