package storage

import (
	"errors"
	"testing"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/datum"
)

func newTestDB(t *testing.T) (*catalog.Catalog, *Manager) {
	t.Helper()
	cat := catalog.New()
	tbl, err := catalog.NewTable("R", []catalog.Column{
		{Name: "id", Kind: datum.KInt},
		{Name: "a", Kind: datum.KInt},
		{Name: "b", Kind: datum.KInt},
	}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	m := NewManager(cat)
	if err := m.CreateTable("R"); err != nil {
		t.Fatal(err)
	}
	return cat, m
}

func row(id, a, b int64) datum.Row {
	return datum.Row{datum.NewInt(id), datum.NewInt(a), datum.NewInt(b)}
}

func TestHeapBasics(t *testing.T) {
	h := NewHeap()
	r1 := h.Insert(row(1, 10, 100))
	r2 := h.Insert(row(2, 20, 200))
	if h.Len() != 2 {
		t.Fatal("len")
	}
	if h.Get(r1)[0].Int() != 1 {
		t.Error("get r1")
	}
	if err := h.Delete(r1); err != nil {
		t.Fatal(err)
	}
	if h.Get(r1) != nil {
		t.Error("deleted row still visible")
	}
	if err := h.Delete(r1); err == nil {
		t.Error("double delete accepted")
	}
	// RID recycling.
	r3 := h.Insert(row(3, 30, 300))
	if r3 != r1 {
		t.Errorf("expected RID recycling, got %d", r3)
	}
	if _, err := h.Update(r2, row(2, 25, 200)); err != nil {
		t.Fatal(err)
	}
	if h.Get(r2)[1].Int() != 25 {
		t.Error("update not applied")
	}
	if _, err := h.Update(RID(99), row(0, 0, 0)); err == nil {
		t.Error("update of missing rid accepted")
	}
	seen := 0
	h.Scan(func(rid RID, r datum.Row) bool { seen++; return true })
	if seen != 2 {
		t.Errorf("scan saw %d rows, want 2", seen)
	}
	// Early stop.
	seen = 0
	h.Scan(func(rid RID, r datum.Row) bool { seen++; return false })
	if seen != 1 {
		t.Error("scan early stop failed")
	}
}

func TestPagesFor(t *testing.T) {
	if PagesFor(0) != 0 {
		t.Error("zero bytes should be zero pages")
	}
	if PagesFor(1) != 1 {
		t.Error("one byte should be one page")
	}
	f := float64(PageSize) * FillFactor
	per := int64(f)
	if PagesFor(per) != 1 || PagesFor(per+1) != 2 {
		t.Error("page boundary accounting wrong")
	}
}

func TestManagerInsertMaintainsIndexes(t *testing.T) {
	cat, m := newTestDB(t)
	ix := &catalog.Index{Name: "R_a", Table: "R", Columns: []string{"a", "id"}}
	if err := cat.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	if _, err := m.BuildIndex(ix); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		if _, touched, err := m.Insert("R", row(i, i%10, i)); err != nil {
			t.Fatal(err)
		} else if touched != 2 {
			t.Fatalf("touched = %d, want 2 (pk + secondary)", touched)
		}
	}
	pi := m.Index(ix.ID())
	if pi == nil || pi.Tree().Len() != 100 {
		t.Fatal("secondary index not maintained")
	}
	// Seek a=5 via secondary.
	count := 0
	for it := pi.Tree().Seek(datum.Row{datum.NewInt(5)}, true, datum.Row{datum.NewInt(5)}, true); it.Valid(); it.Next() {
		count++
	}
	if count != 10 {
		t.Errorf("a=5 count = %d, want 10", count)
	}
}

func TestManagerDeleteUpdate(t *testing.T) {
	cat, m := newTestDB(t)
	ix := &catalog.Index{Name: "R_a", Table: "R", Columns: []string{"a"}}
	if err := cat.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	var rids []RID
	for i := int64(0); i < 50; i++ {
		rid, _, err := m.Insert("R", row(i, i, i))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if _, err := m.BuildIndex(ix); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Delete("R", rids[0]); err != nil {
		t.Fatal(err)
	}
	pi := m.Index(ix.ID())
	if pi.Tree().Len() != 49 {
		t.Errorf("index len = %d, want 49", pi.Tree().Len())
	}
	// Update that changes the secondary key: both the clustered primary
	// (whose leaf holds the full row) and the secondary are rewritten.
	if touched, err := m.Update("R", rids[1], row(1, 999, 1)); err != nil {
		t.Fatal(err)
	} else if touched != 2 {
		t.Errorf("touched = %d, want 2", touched)
	}
	it := pi.Tree().Seek(datum.Row{datum.NewInt(999)}, true, datum.Row{datum.NewInt(999)}, true)
	if !it.Valid() {
		t.Error("updated key not found in index")
	}
	// Update that doesn't touch the secondary's key still rewrites the
	// clustered primary leaf.
	if touched, err := m.Update("R", rids[2], row(2, 2, 555)); err != nil {
		t.Fatal(err)
	} else if touched != 1 {
		t.Errorf("touched = %d, want 1", touched)
	}
	if _, err := m.Delete("R", RID(9999)); err == nil {
		t.Error("delete missing rid accepted")
	}
}

func TestBudgetEnforcement(t *testing.T) {
	cat, m := newTestDB(t)
	for i := int64(0); i < 1000; i++ {
		if _, _, err := m.Insert("R", row(i, i, i)); err != nil {
			t.Fatal(err)
		}
	}
	ix := &catalog.Index{Name: "R_a", Table: "R", Columns: []string{"a", "id"}}
	if err := cat.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	need := m.EstimateIndexBytes(ix)
	if need != 1000*(16+8) {
		t.Errorf("EstimateIndexBytes = %d", need)
	}
	m.SetBudget(need - 1)
	_, err := m.BuildIndex(ix)
	var be *ErrBudget
	if !errors.As(err, &be) {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
	m.SetBudget(need + 1000)
	if _, err := m.BuildIndex(ix); err != nil {
		t.Fatal(err)
	}
	if m.UsedBytes() != need {
		t.Errorf("UsedBytes = %d, want %d", m.UsedBytes(), need)
	}
	if m.FreeBytes() != 1000 {
		t.Errorf("FreeBytes = %d, want 1000", m.FreeBytes())
	}
	if err := m.DropIndex(ix.ID()); err != nil {
		t.Fatal(err)
	}
	if m.UsedBytes() != 0 {
		t.Error("drop did not release budget")
	}
}

func TestBuildSortAvoidance(t *testing.T) {
	cat, m := newTestDB(t)
	for i := int64(0); i < 100; i++ {
		if _, _, err := m.Insert("R", row(i, i%7, i)); err != nil {
			t.Fatal(err)
		}
	}
	// id-leading index shares the primary's key prefix: no sort needed.
	i1 := &catalog.Index{Name: "I1", Table: "R", Columns: []string{"id", "a"}}
	if err := cat.AddIndex(i1); err != nil {
		t.Fatal(err)
	}
	st, err := m.BuildIndex(i1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sorted {
		t.Error("build of id-prefix index should avoid the sort")
	}
	if st.SourceIndex != "R_pk" {
		t.Errorf("source = %q, want R_pk", st.SourceIndex)
	}
	// a-leading index requires a sort.
	i2 := &catalog.Index{Name: "I2", Table: "R", Columns: []string{"a", "b"}}
	if err := cat.AddIndex(i2); err != nil {
		t.Fatal(err)
	}
	st, err = m.BuildIndex(i2)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Sorted {
		t.Error("build of a-leading index should require a sort")
	}
	// Now (a)-prefixed index can build from I2 without sorting.
	i3 := &catalog.Index{Name: "I3", Table: "R", Columns: []string{"a"}}
	if err := cat.AddIndex(i3); err != nil {
		t.Fatal(err)
	}
	st, err = m.BuildIndex(i3)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sorted || st.SourceIndex != "I2" {
		t.Errorf("I3 build: sorted=%v source=%q, want from I2 unsorted", st.Sorted, st.SourceIndex)
	}
}

func TestSuspendRestart(t *testing.T) {
	cat, m := newTestDB(t)
	ix := &catalog.Index{Name: "R_a", Table: "R", Columns: []string{"a"}}
	if err := cat.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 20; i++ {
		if _, _, err := m.Insert("R", row(i, i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.BuildIndex(ix); err != nil {
		t.Fatal(err)
	}
	if err := m.SuspendIndex(ix.ID()); err != nil {
		t.Fatal(err)
	}
	if err := m.SuspendIndex(ix.ID()); err == nil {
		t.Error("double suspend accepted")
	}
	// Changes while suspended are not applied but counted.
	for i := int64(20); i < 30; i++ {
		if _, touched, err := m.Insert("R", row(i, i, i)); err != nil {
			t.Fatal(err)
		} else if touched != 1 { // only the primary
			t.Errorf("touched = %d, want 1", touched)
		}
	}
	pi := m.Index(ix.ID())
	if pi.Tree().Len() != 20 {
		t.Error("suspended index was maintained")
	}
	if pi.PendingOps() != 10 {
		t.Errorf("pendingOps = %d, want 10", pi.PendingOps())
	}
	ops, err := m.RestartIndex(ix.ID())
	if err != nil {
		t.Fatal(err)
	}
	if ops != 10 {
		t.Errorf("restart ops = %d, want 10", ops)
	}
	if pi.Tree().Len() != 30 || pi.State() != StateActive {
		t.Error("restart did not rebuild the index")
	}
	if _, err := m.RestartIndex(ix.ID()); err == nil {
		t.Error("restart of active index accepted")
	}
	// Primary cannot be suspended.
	if err := m.SuspendIndex(cat.PrimaryIndex("R").ID()); err == nil {
		t.Error("suspending primary accepted")
	}
}

func TestManagerErrors(t *testing.T) {
	cat, m := newTestDB(t)
	if err := m.CreateTable("R"); err == nil {
		t.Error("double CreateTable accepted")
	}
	if err := m.CreateTable("NoSuch"); err == nil {
		t.Error("CreateTable of unknown table accepted")
	}
	if _, _, err := m.Insert("NoSuch", row(1, 1, 1)); err == nil {
		t.Error("insert into unknown table accepted")
	}
	if _, _, err := m.Insert("R", datum.Row{datum.NewInt(1)}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := m.DropIndex("nosuch"); err == nil {
		t.Error("drop of unknown index accepted")
	}
	pk := cat.PrimaryIndex("R")
	if err := m.DropIndex(pk.ID()); err == nil {
		t.Error("drop of primary accepted")
	}
	ix := &catalog.Index{Name: "R_a", Table: "R", Columns: []string{"a"}}
	if err := cat.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	if _, err := m.BuildIndex(ix); err != nil {
		t.Fatal(err)
	}
	if _, err := m.BuildIndex(ix); err == nil {
		t.Error("double build accepted")
	}
}
