package storage

import (
	"fmt"
	"sort"
	"strings"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/datum"
	"onlinetuner/internal/wal"
)

// This file threads the write-ahead log through the storage manager.
// Logging is commit-time and logical: DML paths buffer one record per
// applied row effect, and the batch reaches the log only when the
// statement commits. Three framing modes exist:
//
//   - Statement batches. The executor brackets each DML statement with
//     BeginStmt / CommitStmt / AbortStmt on the written table. The
//     engine's per-table write locks guarantee one writer statement per
//     table, so the open batch lives on the tableStore. CommitStmt
//     appends (and, per policy, fsyncs) OUTSIDE the manager lock — the
//     group-commit wait must not block readers or other tables' writers.
//
//   - Autocommit. A direct Manager DML call with no open batch (the
//     bulk loader, tests) commits its single record right after the
//     manager lock is released, undoing the in-memory effect if the
//     append fails.
//
//   - Lifecycle records. Table/index lifecycle transitions log a
//     single-record batch under the manager lock, ordered validate →
//     append → apply: all fallible work happens first, so once the
//     record is durable the in-memory transition cannot fail.
//
// With no writer installed (Durable=false, or during recovery replay)
// every hook is inert: one atomic load on the DML path.

// SetWAL installs the write-ahead log writer. Pass nil to detach (the
// in-memory mode). Installed after recovery replay, so replayed
// operations are never re-logged.
func (m *Manager) SetWAL(w *wal.Writer) {
	if w == nil {
		m.wal.Store(nil)
		return
	}
	m.wal.Store(&walRef{w: w})
}

// WAL returns the installed writer, or nil.
func (m *Manager) WAL() *wal.Writer {
	if ref := m.wal.Load(); ref != nil {
		return ref.w
	}
	return nil
}

// walRef wraps the writer for atomic.Pointer storage.
type walRef struct{ w *wal.Writer }

// stmtBatch buffers the records of one open DML statement on its table.
type stmtBatch struct {
	recs []*wal.Record
}

// autoBatch is a single-record batch to commit after the manager lock
// is released.
type autoBatch struct {
	w    *wal.Writer
	recs []*wal.Record
}

func (a *autoBatch) commit() error {
	_, err := a.w.Append(a.recs)
	return err
}

// BeginStmt opens a statement record batch on a table. The caller must
// hold the table's write lock (the executor does, for the whole
// statement including CommitStmt). A no-op without a WAL.
func (m *Manager) BeginStmt(table string) {
	if m.wal.Load() == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if ts := m.tables[strings.ToLower(table)]; ts != nil {
		ts.stmt = &stmtBatch{}
	}
}

// CommitStmt closes the statement batch and appends it to the log as
// one commit unit. A nil return is the durability acknowledgement; on
// error the caller must roll the statement's in-memory effects back
// (nothing of the batch survives in the log). Empty batches (statement
// matched no rows) skip the log entirely.
func (m *Manager) CommitStmt(table string) error {
	m.mu.Lock()
	var recs []*wal.Record
	if ts := m.tables[strings.ToLower(table)]; ts != nil && ts.stmt != nil {
		recs = ts.stmt.recs
		ts.stmt = nil
	}
	w := m.WAL()
	m.mu.Unlock()
	if w == nil || len(recs) == 0 {
		return nil
	}
	_, err := w.Append(recs)
	return err
}

// AbortStmt discards the open statement batch (the statement failed and
// was rolled back in memory; the log never sees it).
func (m *Manager) AbortStmt(table string) {
	if m.wal.Load() == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if ts := m.tables[strings.ToLower(table)]; ts != nil {
		ts.stmt = nil
	}
}

// logLocked routes one DML record: into the open statement batch, or —
// with no statement open — into an autocommit batch the caller commits
// after releasing the manager lock. Returns nil when no WAL is
// installed or the record joined a statement batch.
func (m *Manager) logLocked(ts *tableStore, rec *wal.Record) *autoBatch {
	w := m.WAL()
	if w == nil {
		return nil
	}
	if ts.stmt != nil {
		ts.stmt.recs = append(ts.stmt.recs, rec)
		return nil
	}
	return &autoBatch{w: w, recs: []*wal.Record{rec}}
}

// logLifecycleLocked appends a single-record batch for a lifecycle
// transition, under the manager lock. Safe with group commit: the flush
// leader never needs the manager lock, so the wait cannot deadlock.
// Lifecycle events are rare; holding the lock across the append keeps
// log order equal to application order with no extra machinery.
func (m *Manager) logLifecycleLocked(rec *wal.Record) error {
	w := m.WAL()
	if w == nil {
		return nil
	}
	_, err := w.Append([]*wal.Record{rec})
	return err
}

// tableDefFor converts a catalog table to its logged form.
func tableDefFor(t *catalog.Table) *wal.TableDef {
	def := &wal.TableDef{Name: t.Name, PK: append([]string(nil), t.PrimaryKey...)}
	for _, c := range t.Columns {
		def.Cols = append(def.Cols, wal.ColDef{Name: c.Name, Kind: uint8(c.Kind), AvgWidth: c.AvgWidth})
	}
	return def
}

// indexDefFor converts a catalog index to its logged form.
func indexDefFor(ix *catalog.Index) *wal.IndexDef {
	return &wal.IndexDef{Name: ix.Name, Table: ix.Table, Columns: append([]string(nil), ix.Columns...)}
}

// SnapshotState captures the manager's full durable state for a
// checkpoint: schemas, raw heaps (tombstones and free-list order
// included — future RID assignment depends on them), and secondary
// index defs with lifecycle state. The caller must quiesce writers (the
// engine holds every table write lock). Output ordering is
// deterministic so identical states encode to identical bytes.
func (m *Manager) SnapshotState() *wal.Snapshot {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s := &wal.Snapshot{}
	names := make([]string, 0, len(m.tables))
	for k := range m.tables {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		ts := m.tables[k]
		slots, rows, free := ts.heap.dumpState()
		st := wal.SnapshotTable{Def: *tableDefFor(ts.def), Slots: int64(slots)}
		for _, hr := range rows {
			st.Rows = append(st.Rows, wal.SnapRow{RID: int64(hr.RID), Row: hr.Row})
		}
		for _, f := range free {
			st.Free = append(st.Free, int64(f))
		}
		s.Tables = append(s.Tables, st)
	}
	ids := make([]string, 0, len(m.indexes))
	for id := range m.indexes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		pi := m.indexes[id]
		if pi.Def.Primary {
			continue
		}
		var state uint8
		switch pi.State() {
		case StateActive:
			state = wal.SnapIndexActive
		case StateSuspended:
			state = wal.SnapIndexSuspended
		case StateBuilding:
			state = wal.SnapIndexBuilding
		}
		s.Indexes = append(s.Indexes, wal.SnapshotIndex{
			Def:        *indexDefFor(pi.Def),
			State:      state,
			PendingOps: pi.PendingOps(),
		})
	}
	return s
}

// RestoreHeap overwrites a materialized table's heap with snapshot
// state and rebuilds the trees of its active indexes from the restored
// rows. Recovery-only: called before any WAL writer is installed.
func (m *Manager) RestoreHeap(table string, slots int64, rows []wal.SnapRow, free []int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	ts := m.tables[strings.ToLower(table)]
	if ts == nil {
		return fmt.Errorf("storage: restore of unmaterialized table %s", table)
	}
	hr := make([]HeapRow, len(rows))
	for i, r := range rows {
		if r.RID < 0 || r.RID >= slots {
			return fmt.Errorf("storage: restore %s: rid %d outside %d slots", table, r.RID, slots)
		}
		hr[i] = HeapRow{RID: RID(r.RID), Row: r.Row}
	}
	fr := make([]RID, len(free))
	for i, f := range free {
		if f < 0 || f >= slots {
			return fmt.Errorf("storage: restore %s: free rid %d outside %d slots", table, f, slots)
		}
		fr[i] = RID(f)
	}
	if err := ts.heap.restoreState(int(slots), hr, fr); err != nil {
		return fmt.Errorf("storage: restore %s: %w", table, err)
	}
	for _, pi := range m.indexes {
		if !strings.EqualFold(pi.Def.Table, table) || pi.State() != StateActive {
			continue
		}
		if err := m.rebuildTreeLocked(ts, pi); err != nil {
			return err
		}
	}
	return nil
}

// RestoreIndex re-materializes a secondary index from snapshot state,
// rebuilding its tree from the (already restored) heap. Recovery-only.
func (m *Manager) RestoreIndex(ix *catalog.Index, state IndexState, pendingOps int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.indexes[ix.ID()]; dup {
		return fmt.Errorf("storage: restore of already materialized index %s", ix.Name)
	}
	ts := m.tables[strings.ToLower(ix.Table)]
	if ts == nil {
		return fmt.Errorf("storage: restore of index %s over unmaterialized table %s", ix.Name, ix.Table)
	}
	pi := &PhysicalIndex{Def: ix}
	pi.colOrds = ordinalsFor(ts.def, ix)
	if err := m.rebuildTreeLocked(ts, pi); err != nil {
		return err
	}
	pi.setState(state)
	pi.pendingOps.Store(pendingOps)
	m.indexes[ix.ID()] = pi
	m.configVersion.Add(1)
	return nil
}

// rebuildTreeLocked bulk-loads a fresh tree for pi from ts's heap. No
// fault draws: recovery and restore paths must not inject.
func (m *Manager) rebuildTreeLocked(ts *tableStore, pi *PhysicalIndex) error {
	entries := make([]Entry, 0, ts.heap.Len())
	ts.heap.Scan(func(rid RID, row datum.Row) bool {
		entries = append(entries, Entry{Key: keyFor(pi.colOrds, row), RID: rid})
		return true
	})
	SortEntriesPooled(entries, m.Pool())
	tree, err := BulkLoad(entries)
	if err != nil {
		return err
	}
	tree.faults = m.faults.Load()
	pi.tree.Store(tree)
	return nil
}
