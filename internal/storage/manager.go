package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/datum"
	"onlinetuner/internal/fault"
	"onlinetuner/internal/par"
	"onlinetuner/internal/wal"
)

// IndexState tracks the lifecycle of a physical index structure.
type IndexState int

// Index lifecycle states. Suspended indexes keep their structure but are
// not maintained and cannot serve queries; Restart replays the missed
// changes, which is cheaper than a rebuild (Section 3.3 of the paper).
const (
	StateActive IndexState = iota
	StateSuspended
	StateBuilding // asynchronous creation in progress
)

func (s IndexState) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateSuspended:
		return "suspended"
	case StateBuilding:
		return "building"
	}
	return "unknown"
}

// PhysicalIndex couples an index definition with its B+-tree structure.
//
// Concurrency: State and PendingOps are atomically readable from any
// goroutine (the optimizer and tuner poll them without holding the
// manager lock). Tree is guarded by the manager lock for maintenance and
// by the engine's per-table statement locks for query reads; while an
// index is building, Tree is the builder's private structure and DML
// changes are captured in a delta log instead.
type PhysicalIndex struct {
	Def *catalog.Index

	tree  atomic.Pointer[BTree]
	state atomic.Int32
	// estBytes is the accounted size reservation while building (the
	// budget must cover the index before the real structure exists).
	estBytes atomic.Int64
	// pendingOps counts row changes missed while suspended; Restart
	// replays them and its cost is proportional to this count.
	pendingOps atomic.Int64
	// colOrds caches the table-ordinal of each index column.
	colOrds []int
	// building logs DML deltas while a background build is in flight;
	// nil otherwise. Guarded by the manager lock.
	building *buildDelta
}

// State returns the index lifecycle state.
func (pi *PhysicalIndex) State() IndexState { return IndexState(pi.state.Load()) }

func (pi *PhysicalIndex) setState(s IndexState) { pi.state.Store(int32(s)) }

// Tree returns the index structure, or nil while a background build is
// still assembling it.
func (pi *PhysicalIndex) Tree() *BTree { return pi.tree.Load() }

// Pages returns the accounted page count of the index structure.
func (pi *PhysicalIndex) Pages() int64 {
	return PagesFor(pi.Bytes())
}

// Bytes returns the accounted byte size of the index structure: the
// estimated reservation while building, the real key bytes otherwise.
func (pi *PhysicalIndex) Bytes() int64 {
	t := pi.tree.Load()
	if t == nil {
		return pi.estBytes.Load()
	}
	return t.KeyBytes()
}

// PendingOps returns the number of changes missed while suspended.
func (pi *PhysicalIndex) PendingOps() int64 { return pi.pendingOps.Load() }

// tableStore couples a heap with its catalog definition.
type tableStore struct {
	def  *catalog.Table
	heap *Heap
	// stmt is the open WAL record batch of the in-flight DML statement
	// on this table, nil when none (or when the WAL is detached).
	// Guarded by the manager lock; at most one writer statement exists
	// per table thanks to the engine's table write locks.
	stmt *stmtBatch
}

// BuildStats describes the work performed by an index build; the cost
// model converts it into the creation cost B_I^s.
type BuildStats struct {
	SourceIndex string // index scanned to produce the build input ("" = heap)
	SourcePages int64
	Rows        int64
	Sorted      bool // true if an explicit sort was required
	NewPages    int64
}

// Manager owns all physical structures and enforces the secondary-index
// space budget. Table (primary) data never counts against the budget;
// secondary indexes — active, suspended or building — do.
type Manager struct {
	mu      sync.RWMutex
	cat     *catalog.Catalog
	tables  map[string]*tableStore
	indexes map[string]*PhysicalIndex // by index ID
	// Budget is the secondary-index space budget in bytes; 0 means
	// unlimited.
	budget int64
	// configVersion increments on every change to the set of query-
	// servable index structures (build, drop, suspend, restart, publish).
	// It is the invalidation token for anything planned against a
	// physical-design snapshot: a plan chosen under ConfigVersion() == v
	// saw exactly the structures that exist while the version stays v.
	configVersion atomic.Int64
	// faults is the optional fault-injection layer. Atomic so the
	// executor's read paths can consult it without the manager lock.
	faults atomic.Pointer[fault.Injector]
	// pool bounds the goroutines index-build sorts may use. The engine
	// installs the same pool the executor draws morsel workers from, so
	// builds and statements share one process-wide budget (sorts acquire
	// slots non-blocking and degrade to sequential when drained). Atomic:
	// the engine reconfigures it while builds may be in flight.
	pool atomic.Pointer[par.Pool]
	// wal is the optional write-ahead log (see wal.go). Atomic so the
	// DML hot path checks for it with one load; nil in in-memory mode.
	wal atomic.Pointer[walRef]
}

// SetPool installs the worker pool index-build sorts draw slots from.
// Passing the executor's pool makes builds and statements share one
// budget. The sorted output is identical at every setting.
func (m *Manager) SetPool(p *par.Pool) { m.pool.Store(p) }

// SetWorkers sizes a fresh private pool for index-build sorts (0 = use
// GOMAXPROCS); prefer SetPool to share the executor's budget.
func (m *Manager) SetWorkers(n int) { m.pool.Store(par.NewPool(n)) }

// Pool returns the pool index-build sorts draw from (possibly nil:
// sorts then run sequentially).
func (m *Manager) Pool() *par.Pool { return m.pool.Load() }

// Workers returns the effective index-build sort parallelism.
func (m *Manager) Workers() int { return m.Pool().Workers() }

// SetFaults installs (or, with nil, removes) the fault-injection layer.
// The injector propagates to every existing index tree and to trees
// created afterwards.
func (m *Manager) SetFaults(inj *fault.Injector) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.faults.Store(inj)
	for _, pi := range m.indexes {
		if t := pi.Tree(); t != nil {
			t.faults = inj
		}
	}
}

// Faults returns the installed fault injector, or nil.
func (m *Manager) Faults() *fault.Injector { return m.faults.Load() }

// newTreeLocked returns an empty tree wired to the manager's injector.
func (m *Manager) newTreeLocked() *BTree {
	t := NewBTree()
	t.faults = m.faults.Load()
	return t
}

// ConfigVersion returns the current physical-design version. It
// increases monotonically on every index lifecycle transition.
func (m *Manager) ConfigVersion() int64 { return m.configVersion.Load() }

// NewManager returns a storage manager bound to a catalog.
func NewManager(cat *catalog.Catalog) *Manager {
	m := &Manager{
		cat:     cat,
		tables:  make(map[string]*tableStore),
		indexes: make(map[string]*PhysicalIndex),
	}
	m.pool.Store(par.NewPool(0))
	return m
}

// SetBudget sets the secondary-index space budget in bytes (0 =
// unlimited).
func (m *Manager) SetBudget(bytes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.budget = bytes
}

// Budget returns the secondary-index space budget in bytes.
func (m *Manager) Budget() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.budget
}

// UsedBytes returns the bytes consumed by secondary indexes.
func (m *Manager) UsedBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.usedLocked()
}

func (m *Manager) usedLocked() int64 {
	var used int64
	for _, pi := range m.indexes {
		if !pi.Def.Primary {
			used += pi.Bytes()
		}
	}
	return used
}

// FreeBytes returns the remaining budget, or a very large number when
// unlimited.
func (m *Manager) FreeBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.budget == 0 {
		return 1 << 62
	}
	return m.budget - m.usedLocked()
}

// CreateTable materializes a heap for a catalog table (which must already
// be registered) and builds its primary index structure.
func (m *Manager) CreateTable(name string) error {
	t := m.cat.Table(name)
	if t == nil {
		return fmt.Errorf("storage: table %s not in catalog", name)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	key := strings.ToLower(name)
	if _, dup := m.tables[key]; dup {
		return fmt.Errorf("storage: table %s already materialized", name)
	}
	pk := m.cat.PrimaryIndex(name)
	if pk == nil {
		return fmt.Errorf("storage: table %s has no primary index", name)
	}
	if err := m.logLifecycleLocked(&wal.Record{Kind: wal.KindAlloc, Schema: tableDefFor(t)}); err != nil {
		return err
	}
	m.tables[key] = &tableStore{def: t, heap: NewHeap()}
	pi := &PhysicalIndex{Def: pk}
	pi.tree.Store(m.newTreeLocked())
	pi.setState(StateActive)
	pi.colOrds = ordinalsFor(t, pk)
	m.indexes[pk.ID()] = pi
	return nil
}

// Heap returns the heap of a table, or nil.
func (m *Manager) Heap(table string) *Heap {
	m.mu.RLock()
	defer m.mu.RUnlock()
	ts := m.tables[strings.ToLower(table)]
	if ts == nil {
		return nil
	}
	return ts.heap
}

// Index returns the physical index with the given catalog ID, or nil.
func (m *Manager) Index(id string) *PhysicalIndex {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.indexes[id]
}

// TableIndexes returns the physical indexes over a table, primary first.
func (m *Manager) TableIndexes(table string) []*PhysicalIndex {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []*PhysicalIndex
	for _, pi := range m.indexes {
		if strings.EqualFold(pi.Def.Table, table) {
			out = append(out, pi)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Def.Primary != out[j].Def.Primary {
			return out[i].Def.Primary
		}
		return out[i].Def.Name < out[j].Def.Name
	})
	return out
}

// ordinalsFor resolves index columns to table ordinals.
func ordinalsFor(t *catalog.Table, ix *catalog.Index) []int {
	ords := make([]int, len(ix.Columns))
	for i, c := range ix.Columns {
		ords[i] = t.ColumnIndex(c)
	}
	return ords
}

// keyFor extracts the index key from a full table row.
func keyFor(ords []int, row datum.Row) datum.Row {
	key := make(datum.Row, len(ords))
	for i, o := range ords {
		key[i] = row[o]
	}
	return key
}

// KeyFor extracts ix's key columns from a full row of table t.
func (m *Manager) KeyFor(t *catalog.Table, ix *catalog.Index, row datum.Row) datum.Row {
	return keyFor(ordinalsFor(t, ix), row)
}

// dmlUndo records the side effects of a partially applied DML statement
// so a mid-statement failure can be compensated. Rollback runs the
// recorded actions in reverse and must never fail: tree compensation
// bypasses the fault injector (insertWith(nil)) and only reverses
// operations that are known to have applied.
type dmlUndo struct {
	applied  []func()
	deferred []*PhysicalIndex // suspended indexes whose pendingOps was bumped
	logged   []*PhysicalIndex // building indexes whose delta log grew
	loggedN  []int
}

func (u *dmlUndo) rollback() {
	for i := len(u.applied) - 1; i >= 0; i-- {
		u.applied[i]()
	}
	for i, pi := range u.logged {
		pi.building.unlog(u.loggedN[i])
	}
	for _, pi := range u.deferred {
		pi.pendingOps.Add(-1)
	}
}

// Insert adds a row to a table and maintains all active indexes. It
// returns the RID and the number of index structures touched (for update
// cost accounting).
//
// Insert is all-or-nothing: if any index maintenance step fails (e.g.
// under fault injection), every structure already touched — including
// the heap row — is compensated before the error returns, so a failed
// statement leaves no partial mutations behind.
func (m *Manager) Insert(table string, row datum.Row) (RID, int, error) {
	rid, touched, auto, err := m.insertLocked(table, row)
	if err != nil {
		return 0, 0, err
	}
	if auto != nil {
		// Autocommit: no statement batch is open, so this row's record
		// commits by itself, outside the manager lock. A failed append
		// means the row never became durable — undo it.
		if err := auto.commit(); err != nil {
			m.UndoInsert(table, rid)
			return 0, 0, err
		}
	}
	return rid, touched, nil
}

func (m *Manager) insertLocked(table string, row datum.Row) (RID, int, *autoBatch, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ts := m.tables[strings.ToLower(table)]
	if ts == nil {
		return 0, 0, nil, fmt.Errorf("storage: table %s not materialized", table)
	}
	if len(row) != len(ts.def.Columns) {
		return 0, 0, nil, fmt.Errorf("storage: table %s: row arity %d != %d", table, len(row), len(ts.def.Columns))
	}
	if err := m.faults.Load().Hit(fault.PageWrite); err != nil {
		return 0, 0, nil, err
	}
	rid := ts.heap.Insert(row)
	touched := 0
	var undo dmlUndo
	for _, pi := range m.indexes {
		if !strings.EqualFold(pi.Def.Table, table) {
			continue
		}
		switch pi.State() {
		case StateSuspended:
			pi.pendingOps.Add(1)
			undo.deferred = append(undo.deferred, pi)
		case StateBuilding:
			pi.building.log(false, Entry{Key: keyFor(pi.colOrds, row), RID: rid})
			undo.logged = append(undo.logged, pi)
			undo.loggedN = append(undo.loggedN, 1)
		case StateActive:
			t, e := pi.Tree(), Entry{Key: keyFor(pi.colOrds, row), RID: rid}
			if err := t.Insert(e); err != nil {
				undo.rollback()
				_ = ts.heap.Delete(rid)
				return 0, 0, nil, err
			}
			undo.applied = append(undo.applied, func() { t.Delete(e) })
			touched++
		}
	}
	auto := m.logLocked(ts, &wal.Record{Kind: wal.KindPageWrite, Op: wal.OpInsert, Table: ts.def.Name, RID: int64(rid), Row: row})
	return rid, touched, auto, nil
}

// Delete removes the row at rid and maintains all active indexes. Like
// Insert, it compensates every applied step if a later one fails.
func (m *Manager) Delete(table string, rid RID) (int, error) {
	touched, old, auto, err := m.deleteLocked(table, rid)
	if err != nil {
		return 0, err
	}
	if auto != nil {
		if err := auto.commit(); err != nil {
			m.UndoDelete(table, rid, old)
			return 0, err
		}
	}
	return touched, nil
}

func (m *Manager) deleteLocked(table string, rid RID) (int, datum.Row, *autoBatch, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ts := m.tables[strings.ToLower(table)]
	if ts == nil {
		return 0, nil, nil, fmt.Errorf("storage: table %s not materialized", table)
	}
	row := ts.heap.Get(rid)
	if row == nil {
		return 0, nil, nil, fmt.Errorf("storage: table %s: rid %d not found", table, rid)
	}
	if err := m.faults.Load().Hit(fault.PageWrite); err != nil {
		return 0, nil, nil, err
	}
	touched := 0
	var undo dmlUndo
	fail := func(err error) (int, datum.Row, *autoBatch, error) {
		undo.rollback()
		return 0, nil, nil, err
	}
	for _, pi := range m.indexes {
		if !strings.EqualFold(pi.Def.Table, table) {
			continue
		}
		switch pi.State() {
		case StateSuspended:
			pi.pendingOps.Add(1)
			undo.deferred = append(undo.deferred, pi)
		case StateBuilding:
			pi.building.log(true, Entry{Key: keyFor(pi.colOrds, row), RID: rid})
			undo.logged = append(undo.logged, pi)
			undo.loggedN = append(undo.loggedN, 1)
		case StateActive:
			t, e := pi.Tree(), Entry{Key: keyFor(pi.colOrds, row), RID: rid}
			if !t.Delete(e) {
				return fail(fmt.Errorf("storage: index %s missing entry for rid %d", pi.Def.Name, rid))
			}
			undo.applied = append(undo.applied, func() { _ = t.insertWith(e, nil) })
			touched++
		}
	}
	if err := ts.heap.Delete(rid); err != nil {
		return fail(err)
	}
	auto := m.logLocked(ts, &wal.Record{Kind: wal.KindPageWrite, Op: wal.OpDelete, Table: ts.def.Name, RID: int64(rid)})
	return touched, row, auto, nil
}

// Update replaces the row at rid and maintains indexes whose keys
// changed.
func (m *Manager) Update(table string, rid RID, newRow datum.Row) (int, error) {
	touched, old, auto, err := m.updateLocked(table, rid, newRow)
	if err != nil {
		return 0, err
	}
	if auto != nil {
		if err := auto.commit(); err != nil {
			m.UndoUpdate(table, rid, old)
			return 0, err
		}
	}
	return touched, nil
}

func (m *Manager) updateLocked(table string, rid RID, newRow datum.Row) (int, datum.Row, *autoBatch, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ts := m.tables[strings.ToLower(table)]
	if ts == nil {
		return 0, nil, nil, fmt.Errorf("storage: table %s not materialized", table)
	}
	old := ts.heap.Get(rid)
	if old == nil {
		return 0, nil, nil, fmt.Errorf("storage: table %s: rid %d not found", table, rid)
	}
	if err := m.faults.Load().Hit(fault.PageWrite); err != nil {
		return 0, nil, nil, err
	}
	touched := 0
	var undo dmlUndo
	fail := func(err error) (int, datum.Row, *autoBatch, error) {
		undo.rollback()
		return 0, nil, nil, err
	}
	for _, pi := range m.indexes {
		if !strings.EqualFold(pi.Def.Table, table) {
			continue
		}
		switch pi.State() {
		case StateSuspended:
			pi.pendingOps.Add(1)
			undo.deferred = append(undo.deferred, pi)
		case StateBuilding:
			oldKey := keyFor(pi.colOrds, old)
			newKey := keyFor(pi.colOrds, newRow)
			if oldKey.Compare(newKey) == 0 {
				continue
			}
			pi.building.log(true, Entry{Key: oldKey, RID: rid})
			pi.building.log(false, Entry{Key: newKey, RID: rid})
			undo.logged = append(undo.logged, pi)
			undo.loggedN = append(undo.loggedN, 2)
		case StateActive:
			oldKey := keyFor(pi.colOrds, old)
			newKey := keyFor(pi.colOrds, newRow)
			if oldKey.Compare(newKey) == 0 {
				continue
			}
			t := pi.Tree()
			oldE := Entry{Key: oldKey, RID: rid}
			newE := Entry{Key: newKey, RID: rid}
			if !t.Delete(oldE) {
				return fail(fmt.Errorf("storage: index %s missing entry for rid %d", pi.Def.Name, rid))
			}
			if err := t.Insert(newE); err != nil {
				_ = t.insertWith(oldE, nil)
				return fail(err)
			}
			undo.applied = append(undo.applied, func() {
				t.Delete(newE)
				_ = t.insertWith(oldE, nil)
			})
			touched++
		}
	}
	if _, err := ts.heap.Update(rid, newRow); err != nil {
		return fail(err)
	}
	auto := m.logLocked(ts, &wal.Record{Kind: wal.KindPageWrite, Op: wal.OpUpdate, Table: ts.def.Name, RID: int64(rid), Row: newRow})
	return touched, old, auto, nil
}

// UndoInsert retracts a row applied earlier in the same statement — the
// executor's statement-level rollback. Undo paths bypass the fault
// layer entirely (compensation must never itself fail) and, for a
// building index, log the inverse delta op rather than unlogging, which
// is correct under any interleaving.
func (m *Manager) UndoInsert(table string, rid RID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ts := m.tables[strings.ToLower(table)]
	if ts == nil {
		return
	}
	row := ts.heap.Get(rid)
	if row == nil {
		return
	}
	for _, pi := range m.indexes {
		if !strings.EqualFold(pi.Def.Table, table) {
			continue
		}
		e := Entry{Key: keyFor(pi.colOrds, row), RID: rid}
		switch pi.State() {
		case StateSuspended:
			pi.pendingOps.Add(1)
		case StateBuilding:
			pi.building.log(true, e)
		case StateActive:
			pi.Tree().Delete(e)
		}
	}
	_ = ts.heap.Delete(rid)
}

// UndoDelete restores a row removed earlier in the same statement at
// its original RID.
func (m *Manager) UndoDelete(table string, rid RID, row datum.Row) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ts := m.tables[strings.ToLower(table)]
	if ts == nil {
		return
	}
	if err := ts.heap.InsertAt(rid, row); err != nil {
		return
	}
	for _, pi := range m.indexes {
		if !strings.EqualFold(pi.Def.Table, table) {
			continue
		}
		e := Entry{Key: keyFor(pi.colOrds, row), RID: rid}
		switch pi.State() {
		case StateSuspended:
			pi.pendingOps.Add(1)
		case StateBuilding:
			pi.building.log(false, e)
		case StateActive:
			_ = pi.Tree().insertWith(e, nil)
		}
	}
}

// UndoUpdate restores a row's previous value after a later step of the
// same statement failed.
func (m *Manager) UndoUpdate(table string, rid RID, oldRow datum.Row) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ts := m.tables[strings.ToLower(table)]
	if ts == nil {
		return
	}
	cur := ts.heap.Get(rid)
	if cur == nil {
		return
	}
	for _, pi := range m.indexes {
		if !strings.EqualFold(pi.Def.Table, table) {
			continue
		}
		curKey := keyFor(pi.colOrds, cur)
		oldKey := keyFor(pi.colOrds, oldRow)
		if curKey.Compare(oldKey) == 0 {
			continue
		}
		switch pi.State() {
		case StateSuspended:
			pi.pendingOps.Add(1)
		case StateBuilding:
			pi.building.log(true, Entry{Key: curKey, RID: rid})
			pi.building.log(false, Entry{Key: oldKey, RID: rid})
		case StateActive:
			pi.Tree().Delete(Entry{Key: curKey, RID: rid})
			_ = pi.Tree().insertWith(Entry{Key: oldKey, RID: rid}, nil)
		}
	}
	_, _ = ts.heap.Update(rid, oldRow)
}

// EstimateIndexBytes estimates the byte size a (possibly hypothetical)
// index over the table would occupy, from live rows and column widths.
func (m *Manager) EstimateIndexBytes(ix *catalog.Index) int64 {
	t := m.cat.Table(ix.Table)
	h := m.Heap(ix.Table)
	if t == nil || h == nil {
		return 0
	}
	rowKeyWidth := int64(t.ColumnsWidth(ix.Columns)) + 8 // + RID
	return rowKeyWidth * int64(h.Len())
}

// BuildIndex materializes a secondary index structure. The build scans
// the cheapest existing active source (an index whose key order makes the
// new index's key sorted, else the heap plus an explicit sort) and bulk
// inserts into a fresh tree. It enforces the space budget and returns
// BuildStats for cost accounting.
func (m *Manager) BuildIndex(ix *catalog.Index) (*BuildStats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.indexes[ix.ID()]; dup {
		return nil, fmt.Errorf("storage: index %s already materialized", ix.Name)
	}
	ts := m.tables[strings.ToLower(ix.Table)]
	if ts == nil {
		return nil, fmt.Errorf("storage: table %s not materialized", ix.Table)
	}
	inj := m.faults.Load()
	if err := inj.Hit(fault.PageAlloc); err != nil {
		return nil, err
	}
	est := int64(ts.def.ColumnsWidth(ix.Columns)+8) * int64(ts.heap.Len())
	if m.budget > 0 && m.usedLocked()+est > m.budget {
		return nil, &ErrBudget{Index: ix.Name, Need: est, Free: m.budget - m.usedLocked()}
	}

	stats := &BuildStats{Rows: int64(ts.heap.Len())}
	// Sort avoidance: if an active index on the same table has the new
	// index's key sequence as a prefix of its own columns, scanning it
	// yields rows already in target order (the paper's I1-vs-I2 creation
	// cost asymmetry).
	source := m.sortAvoidingSourceLocked(ix)
	if source != nil {
		stats.SourceIndex = source.Def.Name
		stats.SourcePages = source.Pages()
		if source.Def.Primary {
			stats.SourcePages = ts.heap.Pages()
		}
		stats.Sorted = false
	} else {
		stats.SourcePages = ts.heap.Pages()
		stats.Sorted = true
	}

	pi := &PhysicalIndex{Def: ix}
	pi.colOrds = ordinalsFor(ts.def, ix)
	// The bulk build is all-or-nothing: the tree stays private until the
	// scan completes, so a mid-scan fault (BuildStep per row) discards it
	// with no published state. Per-insert alloc faults are bypassed so
	// one site controls build failures. Entry extraction keeps the old
	// per-row fault cadence; the sort runs on Workers() goroutines and
	// the tree is assembled by a linear bulk load.
	entries := make([]Entry, 0, ts.heap.Len())
	var buildErr error
	ts.heap.Scan(func(rid RID, row datum.Row) bool {
		if err := inj.Hit(fault.BuildStep); err != nil {
			buildErr = err
			return false
		}
		entries = append(entries, Entry{Key: keyFor(pi.colOrds, row), RID: rid})
		return true
	})
	if buildErr != nil {
		return nil, buildErr
	}
	SortEntriesPooled(entries, m.Pool())
	tree, err := BulkLoad(entries)
	if err != nil {
		return nil, err
	}
	tree.faults = inj
	pi.tree.Store(tree)
	pi.setState(StateActive)
	stats.NewPages = pi.Pages()
	if err := m.logLifecycleLocked(&wal.Record{Kind: wal.KindIndexCreate, Index: indexDefFor(ix)}); err != nil {
		return nil, err
	}
	m.indexes[ix.ID()] = pi
	m.configVersion.Add(1)
	return stats, nil
}

// sortAvoidingSourceLocked returns an active index whose leading columns
// are exactly ix's column sequence, making a sort unnecessary, or nil.
func (m *Manager) sortAvoidingSourceLocked(ix *catalog.Index) *PhysicalIndex {
	for _, pi := range m.indexes {
		if !strings.EqualFold(pi.Def.Table, ix.Table) || pi.State() != StateActive {
			continue
		}
		if ix.IsPrefixOf(pi.Def) {
			return pi
		}
	}
	return nil
}

// DropIndex releases a secondary index structure.
func (m *Manager) DropIndex(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	pi := m.indexes[id]
	if pi == nil {
		return fmt.Errorf("storage: index %s not materialized", id)
	}
	if pi.Def.Primary {
		return fmt.Errorf("storage: cannot drop primary index %s", pi.Def.Name)
	}
	if err := m.logLifecycleLocked(&wal.Record{Kind: wal.KindIndexDrop, Index: indexDefFor(pi.Def)}); err != nil {
		return err
	}
	delete(m.indexes, id)
	m.configVersion.Add(1)
	return nil
}

// SuspendIndex puts an index into the suspended state: it stops being
// maintained and cannot serve queries, but keeps its structure so a later
// Restart only replays missed changes.
func (m *Manager) SuspendIndex(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	pi := m.indexes[id]
	if pi == nil {
		return fmt.Errorf("storage: index %s not materialized", id)
	}
	if pi.Def.Primary {
		return fmt.Errorf("storage: cannot suspend primary index %s", pi.Def.Name)
	}
	if pi.State() != StateActive {
		return fmt.Errorf("storage: index %s is %s, not active", pi.Def.Name, pi.State())
	}
	if err := m.logLifecycleLocked(&wal.Record{Kind: wal.KindIndexSuspend, Index: indexDefFor(pi.Def)}); err != nil {
		return err
	}
	pi.setState(StateSuspended)
	pi.pendingOps.Store(0)
	m.configVersion.Add(1)
	return nil
}

// RestartIndex brings a suspended index back to active by rebuilding the
// missed entries. It returns the number of replayed operations (the
// restart cost driver). The replay is implemented as a rebuild of the
// tree from the heap — correct for any pattern of missed changes — but
// its *accounted* cost is proportional to pendingOps, matching the
// paper's "propagate changes from the log" model.
func (m *Manager) RestartIndex(id string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	pi := m.indexes[id]
	if pi == nil {
		return 0, fmt.Errorf("storage: index %s not materialized", id)
	}
	if pi.State() != StateSuspended {
		return 0, fmt.Errorf("storage: index %s is %s, not suspended", pi.Def.Name, pi.State())
	}
	inj := m.faults.Load()
	if err := inj.Hit(fault.PageAlloc); err != nil {
		return 0, err
	}
	ts := m.tables[strings.ToLower(pi.Def.Table)]
	// Like BuildIndex, the replacement tree stays private until complete:
	// a mid-replay fault leaves the index suspended with its old
	// structure and pending count intact.
	entries := make([]Entry, 0, ts.heap.Len())
	var err error
	ts.heap.Scan(func(rid RID, row datum.Row) bool {
		if e := inj.Hit(fault.BuildStep); e != nil {
			err = e
			return false
		}
		entries = append(entries, Entry{Key: keyFor(pi.colOrds, row), RID: rid})
		return true
	})
	if err != nil {
		return 0, err
	}
	SortEntriesPooled(entries, m.Pool())
	tree, err := BulkLoad(entries)
	if err != nil {
		return 0, err
	}
	if err := m.logLifecycleLocked(&wal.Record{Kind: wal.KindIndexRestart, Index: indexDefFor(pi.Def)}); err != nil {
		return 0, err
	}
	ops := pi.pendingOps.Load()
	tree.faults = inj
	pi.tree.Store(tree)
	pi.setState(StateActive)
	pi.pendingOps.Store(0)
	m.configVersion.Add(1)
	return ops, nil
}

// ErrBudget reports a secondary-index space budget violation.
type ErrBudget struct {
	Index string
	Need  int64
	Free  int64
}

func (e *ErrBudget) Error() string {
	return fmt.Sprintf("storage: index %s needs %d bytes but only %d free in budget", e.Index, e.Need, e.Free)
}
