package storage

import (
	"fmt"
	"strings"

	"onlinetuner/internal/datum"
)

// This file exports the structural invariant checkers the chaos and
// property suites lean on. The contract they enforce is the graceful-
// degradation guarantee of the fault layer: no matter which injected
// fault fired where, every published structure is internally consistent
// and every structure agrees with its neighbors (heap ↔ index ↔ catalog
// ↔ budget). The checkers are read-only and deliberately recompute
// everything from first principles rather than trusting cached counters.

// CheckInvariants validates the B+-tree's structure exhaustively:
//
//   - entries are in strict (key, RID) order, globally;
//   - every leaf is at the same depth;
//   - no node exceeds Fanout; non-root nodes hold at least minFill
//     entries/children;
//   - internal separators route correctly: subtree i holds exactly the
//     entries e with keys[i-1] <= e < keys[i];
//   - the leaf sibling chain visits exactly the leaves, in order;
//   - the cached count and keyBytes counters match a recount.
//
// The caller must hold whatever lock protects the tree from mutation.
func (t *BTree) CheckInvariants() error {
	// Structural walk: depth, fill, separator routing.
	var leaves []*node
	var walk func(n *node, depth int, lo, hi *Entry) error
	walk = func(n *node, depth int, lo, hi *Entry) error {
		if n.leaf {
			if depth != t.height {
				return fmt.Errorf("storage: leaf at depth %d, tree height %d", depth, t.height)
			}
			if len(n.entries) > Fanout {
				return fmt.Errorf("storage: leaf over-full: %d > %d", len(n.entries), Fanout)
			}
			if n != t.root && len(n.entries) < minFill {
				return fmt.Errorf("storage: non-root leaf under-filled: %d < %d", len(n.entries), minFill)
			}
			if len(n.keys) != 0 || len(n.children) != 0 {
				return fmt.Errorf("storage: leaf with internal fields populated")
			}
			for i, e := range n.entries {
				if i > 0 && compareEntry(n.entries[i-1], e) >= 0 {
					return fmt.Errorf("storage: leaf order violated: %v >= %v", n.entries[i-1], e)
				}
				if lo != nil && compareEntry(e, *lo) < 0 {
					return fmt.Errorf("storage: entry %v below separator %v", e, *lo)
				}
				if hi != nil && compareEntry(e, *hi) >= 0 {
					return fmt.Errorf("storage: entry %v not below separator %v", e, *hi)
				}
			}
			leaves = append(leaves, n)
			return nil
		}
		if len(n.entries) != 0 {
			return fmt.Errorf("storage: internal node with leaf entries")
		}
		if len(n.children) != len(n.keys)+1 {
			return fmt.Errorf("storage: internal node with %d children, %d keys", len(n.children), len(n.keys))
		}
		if len(n.children) > Fanout {
			return fmt.Errorf("storage: internal over-full: %d > %d", len(n.children), Fanout)
		}
		if n != t.root && len(n.children) < minFill {
			return fmt.Errorf("storage: non-root internal under-filled: %d < %d", len(n.children), minFill)
		}
		if n == t.root && len(n.children) < 2 {
			return fmt.Errorf("storage: internal root with %d children", len(n.children))
		}
		for i, k := range n.keys {
			if i > 0 && compareEntry(n.keys[i-1], k) >= 0 {
				return fmt.Errorf("storage: separator order violated: %v >= %v", n.keys[i-1], k)
			}
			if lo != nil && compareEntry(k, *lo) < 0 {
				return fmt.Errorf("storage: separator %v below bound %v", k, *lo)
			}
			if hi != nil && compareEntry(k, *hi) >= 0 {
				return fmt.Errorf("storage: separator %v not below bound %v", k, *hi)
			}
		}
		for i, c := range n.children {
			clo, chi := lo, hi
			if i > 0 {
				clo = &n.keys[i-1]
			}
			if i < len(n.keys) {
				chi = &n.keys[i]
			}
			if err := walk(c, depth+1, clo, chi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 1, nil, nil); err != nil {
		return err
	}

	// The sibling chain must visit exactly the leaves, in order.
	chain := t.root
	for !chain.leaf {
		chain = chain.children[0]
	}
	for i, want := range leaves {
		if chain != want {
			return fmt.Errorf("storage: leaf chain diverges from tree order at leaf %d", i)
		}
		chain = chain.next
	}
	if chain != nil {
		return fmt.Errorf("storage: leaf chain extends past the last leaf")
	}

	// Counter accounting: recount entries and key bytes.
	var count, keyBytes int64
	for _, l := range leaves {
		for _, e := range l.entries {
			count++
			keyBytes += int64(e.Key.Width()) + 8
		}
	}
	if count != t.count.Load() {
		return fmt.Errorf("storage: btree count %d != recount %d", t.count.Load(), count)
	}
	if keyBytes != t.keyBytes.Load() {
		return fmt.Errorf("storage: btree keyBytes %d != recount %d", t.keyBytes.Load(), keyBytes)
	}
	return nil
}

// CheckConsistency validates cross-structure agreement for the whole
// storage layer: heap accounting, index↔heap row agreement, catalog↔
// storage agreement, and the budget. It is the post-chaos oracle — after
// any sequence of faulted operations, a clean run of CheckConsistency
// means no fault leaked partial state.
func (m *Manager) CheckConsistency() error {
	m.mu.RLock()
	defer m.mu.RUnlock()

	// Heap accounting: cached counters vs a recount.
	for name, ts := range m.tables {
		var count, bytes int64
		ts.heap.Scan(func(rid RID, r datum.Row) bool {
			count++
			bytes += int64(r.Width()) + RowOverhead
			return true
		})
		if count != int64(ts.heap.Len()) {
			return fmt.Errorf("storage: heap %s count %d != recount %d", name, ts.heap.Len(), count)
		}
		if bytes != ts.heap.Bytes() {
			return fmt.Errorf("storage: heap %s bytes %d != recount %d", name, ts.heap.Bytes(), bytes)
		}
		if ts.heap.Pages() != PagesFor(bytes) {
			return fmt.Errorf("storage: heap %s pages %d != PagesFor(%d)", name, ts.heap.Pages(), bytes)
		}
	}

	for id, pi := range m.indexes {
		ts := m.tables[strings.ToLower(pi.Def.Table)]
		if ts == nil {
			return fmt.Errorf("storage: index %s over unmaterialized table %s", pi.Def.Name, pi.Def.Table)
		}
		// Catalog agreement: every query-servable index must still be
		// declared. A building index is the one exception — the tuner
		// registers it in the catalog only at publish (FinishBuild), so
		// mid-build it is materialized but intentionally invisible.
		if pi.State() != StateBuilding && m.cat.IndexByID(id) == nil {
			return fmt.Errorf("storage: index %s materialized but not in catalog", pi.Def.Name)
		}
		switch pi.State() {
		case StateActive:
			tree := pi.Tree()
			if tree == nil {
				return fmt.Errorf("storage: active index %s has no tree", pi.Def.Name)
			}
			if err := tree.CheckInvariants(); err != nil {
				return fmt.Errorf("index %s: %w", pi.Def.Name, err)
			}
			if tree.Len() != ts.heap.Len() {
				return fmt.Errorf("storage: index %s has %d entries, heap has %d rows", pi.Def.Name, tree.Len(), ts.heap.Len())
			}
			// Every live row must resolve to exactly its own entry; with
			// the length equality above this proves the entry sets match.
			var missing error
			ts.heap.Scan(func(rid RID, r datum.Row) bool {
				key := keyFor(pi.colOrds, r)
				for it := tree.Seek(key, true, key, true); it.Valid(); it.Next() {
					if it.Entry().RID == rid {
						return true
					}
				}
				missing = fmt.Errorf("storage: index %s missing entry for rid %d", pi.Def.Name, rid)
				return false
			})
			if missing != nil {
				return missing
			}
			if pi.building != nil {
				return fmt.Errorf("storage: active index %s still has a delta log", pi.Def.Name)
			}
		case StateSuspended:
			// A suspended tree is intentionally stale; only its internal
			// structure must hold.
			if tree := pi.Tree(); tree != nil {
				if err := tree.CheckInvariants(); err != nil {
					return fmt.Errorf("suspended index %s: %w", pi.Def.Name, err)
				}
			}
		case StateBuilding:
			if pi.building == nil {
				return fmt.Errorf("storage: building index %s has no delta log", pi.Def.Name)
			}
			if pi.estBytes.Load() < 0 {
				return fmt.Errorf("storage: building index %s has negative reservation", pi.Def.Name)
			}
		}
	}

	if m.budget > 0 {
		if used := m.usedLocked(); used > m.budget {
			return fmt.Errorf("storage: budget exceeded: %d used > %d budget", used, m.budget)
		}
	}
	return nil
}
