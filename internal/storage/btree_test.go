package storage

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"onlinetuner/internal/datum"
)

func intKey(vals ...int64) datum.Row {
	r := make(datum.Row, len(vals))
	for i, v := range vals {
		r[i] = datum.NewInt(v)
	}
	return r
}

func TestBTreeInsertScan(t *testing.T) {
	tr := NewBTree()
	n := 1000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, v := range perm {
		if err := tr.Insert(Entry{Key: intKey(int64(v)), RID: RID(v)}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	if tr.Height() < 2 {
		t.Errorf("expected multi-level tree, height = %d", tr.Height())
	}
	i := 0
	for it := tr.Scan(); it.Valid(); it.Next() {
		if got := it.Entry().Key[0].Int(); got != int64(i) {
			t.Fatalf("scan position %d: got %d", i, got)
		}
		i++
	}
	if i != n {
		t.Fatalf("scanned %d entries, want %d", i, n)
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeDuplicateKeyDifferentRID(t *testing.T) {
	tr := NewBTree()
	for i := 0; i < 100; i++ {
		if err := tr.Insert(Entry{Key: intKey(7), RID: RID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Insert(Entry{Key: intKey(7), RID: 5}); err == nil {
		t.Error("exact duplicate accepted")
	}
	count := 0
	for it := tr.Seek(intKey(7), true, intKey(7), true); it.Valid(); it.Next() {
		count++
	}
	if count != 100 {
		t.Errorf("seek(=7) found %d, want 100", count)
	}
}

func TestBTreeSeekRange(t *testing.T) {
	tr := NewBTree()
	for i := 0; i < 500; i++ {
		if err := tr.Insert(Entry{Key: intKey(int64(i * 2)), RID: RID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// [100, 200] inclusive: keys 100..200 even = 51 entries.
	count := 0
	for it := tr.Seek(intKey(100), true, intKey(200), true); it.Valid(); it.Next() {
		count++
	}
	if count != 51 {
		t.Errorf("range [100,200] = %d entries, want 51", count)
	}
	// (100, 200) exclusive = 49.
	count = 0
	for it := tr.Seek(intKey(100), false, intKey(200), false); it.Valid(); it.Next() {
		count++
	}
	if count != 49 {
		t.Errorf("range (100,200) = %d entries, want 49", count)
	}
	// Seek on missing key lands on next.
	it := tr.Seek(intKey(101), true, nil, false)
	if !it.Valid() || it.Entry().Key[0].Int() != 102 {
		t.Error("seek(101) should land on 102")
	}
	// Unbounded above from 990.
	count = 0
	for it := tr.Seek(intKey(990), true, nil, false); it.Valid(); it.Next() {
		count++
	}
	if count != 5 {
		t.Errorf("range [990,∞) = %d, want 5", count)
	}
}

func TestBTreeCompositeKeyPrefixSeek(t *testing.T) {
	tr := NewBTree()
	rid := RID(0)
	for a := int64(0); a < 20; a++ {
		for b := int64(0); b < 20; b++ {
			if err := tr.Insert(Entry{Key: intKey(a, b), RID: rid}); err != nil {
				t.Fatal(err)
			}
			rid++
		}
	}
	// Prefix seek a=7: should find exactly 20 entries.
	count := 0
	for it := tr.Seek(intKey(7), true, intKey(7), true); it.Valid(); it.Next() {
		e := it.Entry()
		if e.Key[0].Int() != 7 {
			t.Fatalf("prefix seek leaked key %v", e.Key)
		}
		count++
	}
	if count != 20 {
		t.Errorf("prefix seek a=7 found %d, want 20", count)
	}
	// Full composite seek (7,3)..(7,5).
	count = 0
	for it := tr.Seek(intKey(7, 3), true, intKey(7, 5), true); it.Valid(); it.Next() {
		count++
	}
	if count != 3 {
		t.Errorf("composite range found %d, want 3", count)
	}
}

func TestBTreeDelete(t *testing.T) {
	tr := NewBTree()
	n := 2000
	for i := 0; i < n; i++ {
		if err := tr.Insert(Entry{Key: intKey(int64(i)), RID: RID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Delete every other entry.
	for i := 0; i < n; i += 2 {
		if !tr.Delete(Entry{Key: intKey(int64(i)), RID: RID(i)}) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len = %d, want %d", tr.Len(), n/2)
	}
	if tr.Delete(Entry{Key: intKey(0), RID: 0}) {
		t.Error("double delete succeeded")
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// Delete the rest; tree must be empty and well formed.
	for i := 1; i < n; i += 2 {
		if !tr.Delete(Entry{Key: intKey(int64(i)), RID: RID(i)}) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Errorf("after full delete: len=%d height=%d", tr.Len(), tr.Height())
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBTreeRandomOpsProperty interleaves random inserts and deletes and
// checks the tree against a reference map after every batch.
func TestBTreeRandomOpsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := NewBTree()
		ref := map[int64]bool{}
		for op := 0; op < 600; op++ {
			v := int64(r.Intn(200))
			if ref[v] {
				if !tr.Delete(Entry{Key: intKey(v), RID: RID(v)}) {
					return false
				}
				delete(ref, v)
			} else {
				if err := tr.Insert(Entry{Key: intKey(v), RID: RID(v)}); err != nil {
					return false
				}
				ref[v] = true
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		if err := tr.checkInvariants(); err != nil {
			return false
		}
		// Every reference key must be findable.
		keys := make([]int64, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		i := 0
		for it := tr.Scan(); it.Valid(); it.Next() {
			if it.Entry().Key[0].Int() != keys[i] {
				return false
			}
			i++
		}
		return i == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBTreeKeyBytesAccounting(t *testing.T) {
	tr := NewBTree()
	if err := tr.Insert(Entry{Key: intKey(1, 2), RID: 0}); err != nil {
		t.Fatal(err)
	}
	want := int64(16 + 8)
	if tr.KeyBytes() != want {
		t.Errorf("KeyBytes = %d, want %d", tr.KeyBytes(), want)
	}
	tr.Delete(Entry{Key: intKey(1, 2), RID: 0})
	if tr.KeyBytes() != 0 {
		t.Errorf("KeyBytes after delete = %d, want 0", tr.KeyBytes())
	}
}

func TestBTreeStringKeys(t *testing.T) {
	tr := NewBTree()
	words := []string{"delta", "alpha", "echo", "charlie", "bravo"}
	for i, w := range words {
		if err := tr.Insert(Entry{Key: datum.Row{datum.NewString(w)}, RID: RID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	for it := tr.Scan(); it.Valid(); it.Next() {
		got = append(got, it.Entry().Key[0].Str())
	}
	want := []string{"alpha", "bravo", "charlie", "delta", "echo"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v", got)
		}
	}
}

func BenchmarkBTreeInsert(b *testing.B) {
	tr := NewBTree()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tr.Insert(Entry{Key: intKey(int64(i)), RID: RID(i)})
	}
}

func BenchmarkBTreeSeek(b *testing.B) {
	tr := NewBTree()
	for i := 0; i < 100000; i++ {
		_ = tr.Insert(Entry{Key: intKey(int64(i)), RID: RID(i)})
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		it := tr.Seek(intKey(int64(i%100000)), true, nil, false)
		_ = it.Valid()
	}
}
