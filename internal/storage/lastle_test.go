package storage

import (
	"math/rand"
	"testing"

	"onlinetuner/internal/datum"
)

// TestBTreeLastLE checks LastLE against a linear-scan oracle on a
// multi-level tree of composite (a, id) keys, including NULL entries
// (which sort first) and bounds that miss every group.
func TestBTreeLastLE(t *testing.T) {
	tr := NewBTree()
	rid := RID(0)
	var all []Entry
	ins := func(key datum.Row) {
		e := Entry{Key: key, RID: rid}
		rid++
		if err := tr.Insert(e); err != nil {
			t.Fatal(err)
		}
		all = append(all, e)
	}
	r := rand.New(rand.NewSource(7))
	for _, i := range r.Perm(500) {
		ins(intKey(int64(i/10), int64(i)))
	}
	for i := 0; i < 5; i++ {
		ins(datum.Row{datum.Null, datum.NewInt(int64(1000 + i))})
	}
	if tr.Height() < 2 {
		t.Fatalf("want a multi-level tree, height = %d", tr.Height())
	}

	oracle := func(bound datum.Row) (Entry, bool) {
		var best Entry
		found := false
		for it := tr.Scan(); it.Valid(); it.Next() {
			if prefixCompare(it.Entry().Key, bound) <= 0 {
				best = it.Entry()
				found = true
			}
		}
		return best, found
	}
	check := func(name string, bound datum.Row) {
		t.Helper()
		wantE, wantOK := oracle(bound)
		gotE, gotOK := tr.LastLE(bound)
		if gotOK != wantOK {
			t.Fatalf("%s: ok = %v, want %v", name, gotOK, wantOK)
		}
		if gotOK && gotE.RID != wantE.RID {
			t.Fatalf("%s: got key %v rid %d, want key %v rid %d",
				name, gotE.Key, gotE.RID, wantE.Key, wantE.RID)
		}
	}

	for a := int64(-2); a <= 51; a++ {
		check("prefix", intKey(a))
	}
	check("exact pair", intKey(25, 255))
	check("between pairs", intKey(25, 254))
	check("below pair range", intKey(25, -1))
	check("null prefix", datum.Row{datum.Null})
	check("empty bound", datum.Row{})

	// Empty tree.
	empty := NewBTree()
	if _, ok := empty.LastLE(intKey(1)); ok {
		t.Error("LastLE on empty tree reported an entry")
	}
}
