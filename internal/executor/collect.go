package executor

import (
	"time"

	"onlinetuner/internal/plan"
)

// NodeStats records the actual execution of one plan operator, for
// EXPLAIN ANALYZE. Duration is cumulative (it includes children),
// matching the cumulative estimated cost the plan nodes carry.
type NodeStats struct {
	// Rows is the operator's actual output cardinality.
	Rows int64
	// Scanned counts the heap rows or index entries the operator
	// examined at the storage layer before residual filtering. Zero for
	// interior operators, which only consume their children's output.
	Scanned int64
	// Pages is the accounted page traffic of a leaf operator: the full
	// structure size for scans, and the touched key pages plus one page
	// per heap fetch for seeks (the cost model's random-I/O unit).
	Pages int64
	// Duration is the operator's elapsed time including its children.
	Duration time.Duration
}

// Collector gathers per-operator NodeStats during one plan execution.
// It is owned by the executing statement's goroutine: not safe for
// concurrent use, and meant to be used for a single Run.
type Collector struct {
	stats map[plan.Node]*NodeStats
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{stats: make(map[plan.Node]*NodeStats)}
}

// Stats returns the recorded stats for a plan node, or nil.
func (c *Collector) Stats(n plan.Node) *NodeStats {
	if c == nil {
		return nil
	}
	return c.stats[n]
}

// at returns the mutable stats slot for a node, creating it on first
// use. Interior operators may execute a node once; INLJoin-style leaves
// accumulate across invocations into the same slot.
func (c *Collector) at(n plan.Node) *NodeStats {
	s := c.stats[n]
	if s == nil {
		s = &NodeStats{}
		c.stats[n] = s
	}
	return s
}
