package executor

import (
	"sync"
	"sync/atomic"
	"time"

	"onlinetuner/internal/plan"
)

// NodeStats records the actual execution of one plan operator, for
// EXPLAIN ANALYZE. Duration is cumulative (it includes children),
// matching the cumulative estimated cost the plan nodes carry. The
// cells are atomic: under parallel execution several morsel workers
// account into the same operator slot concurrently, and the totals must
// still be exact (satellite of the morsel-parallelism change).
type NodeStats struct {
	rows    atomic.Int64
	scanned atomic.Int64
	pages   atomic.Int64
	durNS   atomic.Int64
	// engine records which evaluation strategy the operator used:
	// 0 = not recorded, 1 = row, 2 = vectorized. Written once by the
	// coordinator when the operator resolves its engine.
	engine atomic.Int32
}

// Rows is the operator's actual output cardinality.
func (s *NodeStats) Rows() int64 { return s.rows.Load() }

// Scanned counts the heap rows or index entries the operator examined
// at the storage layer before residual filtering. Zero for interior
// operators, which only consume their children's output.
func (s *NodeStats) Scanned() int64 { return s.scanned.Load() }

// Pages is the accounted page traffic of a leaf operator: the full
// structure size for scans, and the touched key pages plus one page per
// heap fetch for seeks (the cost model's random-I/O unit).
func (s *NodeStats) Pages() int64 { return s.pages.Load() }

// Duration is the operator's elapsed time including its children.
func (s *NodeStats) Duration() time.Duration { return time.Duration(s.durNS.Load()) }

// Engine reports the evaluation strategy the operator used:
// "vectorized", "row", or "" for operators that record no engine
// (interior plumbing like Limit).
func (s *NodeStats) Engine() string {
	switch s.engine.Load() {
	case 1:
		return "row"
	case 2:
		return "vectorized"
	}
	return ""
}

func (s *NodeStats) setEngine(vectorized bool) {
	if vectorized {
		s.engine.Store(2)
	} else {
		s.engine.Store(1)
	}
}

func (s *NodeStats) addRows(n int64)             { s.rows.Add(n) }
func (s *NodeStats) addScanned(n int64)          { s.scanned.Add(n) }
func (s *NodeStats) addPages(n int64)            { s.pages.Add(n) }
func (s *NodeStats) addDuration(d time.Duration) { s.durNS.Add(int64(d)) }

// Collector gathers per-operator NodeStats during one plan execution.
// The slot map is mutex-guarded and the cells are atomic, so morsel
// workers may account concurrently; a collector is still meant for a
// single Run.
type Collector struct {
	mu    sync.Mutex
	stats map[plan.Node]*NodeStats
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{stats: make(map[plan.Node]*NodeStats)}
}

// Stats returns the recorded stats for a plan node, or nil.
func (c *Collector) Stats(n plan.Node) *NodeStats {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats[n]
}

// at returns the stats slot for a node, creating it on first use.
// Interior operators may execute a node once; INLJoin-style leaves
// accumulate across invocations into the same slot.
func (c *Collector) at(n plan.Node) *NodeStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats[n]
	if s == nil {
		s = &NodeStats{}
		c.stats[n] = s
	}
	return s
}
