package executor

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/datum"
	"onlinetuner/internal/fault"
	"onlinetuner/internal/plan"
	"onlinetuner/internal/sql"
	"onlinetuner/internal/storage"
)

// ErrStaleIndex reports that a plan referenced an index that is no
// longer active — under concurrency the tuner may drop an index between
// a statement's optimization and its execution. The engine treats this
// as retryable: it re-optimizes under the current configuration.
var ErrStaleIndex = errors.New("index not active")

// Executor runs physical plans against a storage manager.
type Executor struct {
	cat *catalog.Catalog
	mgr *storage.Manager
}

// New returns an executor.
func New(cat *catalog.Catalog, mgr *storage.Manager) *Executor {
	return &Executor{cat: cat, mgr: mgr}
}

// ResultSet is the materialized output of a statement.
type ResultSet struct {
	Columns  []string
	Rows     []datum.Row
	Affected int // rows changed by DML
}

// Run executes a plan and returns its result set.
func (e *Executor) Run(p plan.Node) (*ResultSet, error) {
	return e.RunContext(context.Background(), p, nil)
}

// RunCollected executes a plan recording per-operator actuals (rows,
// scanned entries, page traffic, timings) into the collector — the
// execution side of EXPLAIN ANALYZE. A nil collector makes it
// equivalent to Run: the instrumentation reduces to a nil check.
func (e *Executor) RunCollected(p plan.Node, c *Collector) (*ResultSet, error) {
	return e.RunContext(context.Background(), p, c)
}

// ctxCheckEvery bounds how many rows an operator processes between
// context polls: cancellation and deadlines take effect mid-scan, not
// only at operator boundaries.
const ctxCheckEvery = 1024

// run is the per-execution state threaded through the operator tree:
// the caller's context, the storage layer's fault injector (resolved
// once per statement), and the row countdown to the next context poll.
// It embeds the shared Executor, so operator code reads e.cat/e.mgr
// unchanged.
type run struct {
	*Executor
	ctx       context.Context
	faults    *fault.Injector
	countdown int
}

// tick is called once per scanned row; every ctxCheckEvery rows it
// polls the context so a cancelled statement stops promptly.
func (e *run) tick() error {
	e.countdown--
	if e.countdown > 0 {
		return nil
	}
	e.countdown = ctxCheckEvery
	return e.ctx.Err()
}

// RunContext executes a plan under a context: cancellation or deadline
// expiry aborts the statement between operators and (for scans) every
// ctxCheckEvery rows. Read operators consult the storage manager's
// fault injector (PageRead), so injected read failures surface here as
// statement errors with nothing to roll back.
func (e *Executor) RunContext(ctx context.Context, p plan.Node, c *Collector) (*ResultSet, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r := &run{Executor: e, ctx: ctx, faults: e.mgr.Faults(), countdown: ctxCheckEvery}
	switch n := p.(type) {
	case *plan.InsertNode:
		return r.timedDML(p, c, func() (*ResultSet, error) { return r.runInsert(n, c) })
	case *plan.UpdateNode:
		return r.timedDML(p, c, func() (*ResultSet, error) { return r.runUpdate(n) })
	case *plan.DeleteNode:
		return r.timedDML(p, c, func() (*ResultSet, error) { return r.runDelete(n) })
	}
	rows, err := r.exec(p, c)
	if err != nil {
		return nil, err
	}
	return &ResultSet{Columns: schemaColumns(p.Schema()), Rows: rows}, nil
}

// exec evaluates a read-only subtree outside a full statement run —
// unit tests and internal callers that hold a plan fragment rather
// than a statement root.
func (e *Executor) exec(p plan.Node, c *Collector) ([]datum.Row, error) {
	r := &run{Executor: e, ctx: context.Background(), faults: e.mgr.Faults(), countdown: ctxCheckEvery}
	return r.exec(p, c)
}

// timedDML wraps a DML root so its affected-row count and duration are
// collected like any other operator's.
func (e *run) timedDML(p plan.Node, c *Collector, run func() (*ResultSet, error)) (*ResultSet, error) {
	if c == nil {
		return run()
	}
	start := time.Now()
	rs, err := run()
	st := c.at(p)
	st.Duration += time.Since(start)
	if rs != nil {
		st.Rows += int64(rs.Affected)
	}
	return rs, err
}

// exec evaluates a read-only operator subtree, recording actuals into
// the collector when one is attached.
func (e *run) exec(p plan.Node, c *Collector) ([]datum.Row, error) {
	if c == nil {
		return e.execNode(p, nil)
	}
	start := time.Now()
	rows, err := e.execNode(p, c)
	st := c.at(p)
	st.Duration += time.Since(start)
	st.Rows += int64(len(rows))
	return rows, err
}

func (e *run) execNode(p plan.Node, c *Collector) ([]datum.Row, error) {
	switch n := p.(type) {
	case *plan.SeqScan:
		return e.seqScan(n, c)
	case *plan.IndexScan:
		return e.indexScan(n, c)
	case *plan.IndexSeek:
		return e.indexSeek(n, c)
	case *plan.Filter:
		return e.filter(n, c)
	case *plan.Project:
		return e.project(n, c)
	case *plan.Sort:
		return e.sortNode(n, c)
	case *plan.Limit:
		return e.limit(n, c)
	case *plan.Distinct:
		return e.distinct(n, c)
	case *plan.HashJoin:
		return e.hashJoin(n, c)
	case *plan.MergeJoin:
		return e.mergeJoin(n, c)
	case *plan.CrossJoin:
		return e.crossJoin(n, c)
	case *plan.INLJoin:
		return e.inlJoin(n, c)
	case *plan.HashAgg:
		return e.hashAgg(n, c)
	}
	return nil, fmt.Errorf("executor: unsupported node %T", p)
}

func (e *run) seqScan(n *plan.SeqScan, c *Collector) ([]datum.Row, error) {
	h := e.mgr.Heap(n.Table)
	if h == nil {
		return nil, fmt.Errorf("executor: table %s not materialized", n.Table)
	}
	if err := e.faults.Hit(fault.PageRead); err != nil {
		return nil, fmt.Errorf("executor: scan of %s: %w", n.Table, err)
	}
	pred, err := compilePreds(n.Preds, n.Schema())
	if err != nil {
		return nil, err
	}
	var out []datum.Row
	var scanned int64
	var scanErr error
	h.Scan(func(_ storage.RID, r datum.Row) bool {
		scanned++
		if err := e.tick(); err != nil {
			scanErr = err
			return false
		}
		ok, err := pred(r)
		if err != nil {
			scanErr = err
			return false
		}
		if ok {
			out = append(out, r)
		}
		return true
	})
	if c != nil {
		st := c.at(n)
		st.Scanned += scanned
		st.Pages += h.Pages() // a full scan reads the whole heap
	}
	return out, scanErr
}

func (e *run) indexScan(n *plan.IndexScan, c *Collector) ([]datum.Row, error) {
	pi := e.mgr.Index(n.Index.ID())
	if pi == nil || pi.State() != storage.StateActive {
		return nil, fmt.Errorf("executor: index %s: %w", n.Index.Name, ErrStaleIndex)
	}
	if err := e.faults.Hit(fault.PageRead); err != nil {
		return nil, fmt.Errorf("executor: scan of index %s: %w", n.Index.Name, err)
	}
	pred, err := compilePreds(n.Preds, n.Schema())
	if err != nil {
		return nil, err
	}
	var out []datum.Row
	var scanned int64
	for it := pi.Tree().Scan(); it.Valid(); it.Next() {
		scanned++
		if err := e.tick(); err != nil {
			return nil, err
		}
		row := it.Entry().Key
		ok, err := pred(row)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, row)
		}
	}
	if c != nil {
		st := c.at(n)
		st.Scanned += scanned
		st.Pages += pi.Pages() // a full scan reads the whole index
	}
	return out, nil
}

func (e *run) indexSeek(n *plan.IndexSeek, c *Collector) ([]datum.Row, error) {
	pi := e.mgr.Index(n.Index.ID())
	if pi == nil || pi.State() != storage.StateActive {
		return nil, fmt.Errorf("executor: index %s: %w", n.Index.Name, ErrStaleIndex)
	}
	if err := e.faults.Hit(fault.PageRead); err != nil {
		return nil, fmt.Errorf("executor: seek on index %s: %w", n.Index.Name, err)
	}
	h := e.mgr.Heap(n.Index.Table)
	pred, err := compilePreds(n.Preds, n.Schema())
	if err != nil {
		return nil, err
	}
	lo := append(datum.Row(nil), n.EqVals...)
	hi := append(datum.Row(nil), n.EqVals...)
	loInc, hiInc := true, true
	if n.Lo != nil {
		lo = append(lo, *n.Lo)
		loInc = n.LoInc
	}
	if n.Hi != nil {
		hi = append(hi, *n.Hi)
		hiInc = n.HiInc
	}
	var it *storage.Iterator
	switch {
	case len(lo) == 0 && len(hi) == 0:
		it = pi.Tree().Scan()
	case len(lo) == 0:
		it = pi.Tree().Seek(datum.Row{datum.Null}, true, hi, hiInc)
	default:
		if len(hi) == 0 {
			it = pi.Tree().Seek(lo, loInc, nil, false)
		} else {
			it = pi.Tree().Seek(lo, loInc, hi, hiInc)
		}
	}
	var out []datum.Row
	var scanned, keyBytes, fetches int64
	for ; it.Valid(); it.Next() {
		ent := it.Entry()
		scanned++
		if err := e.tick(); err != nil {
			return nil, err
		}
		keyBytes += int64(ent.Key.Width())
		var row datum.Row
		if n.Fetch || n.Index.Primary {
			row = h.Get(ent.RID)
			if row == nil {
				return nil, fmt.Errorf("executor: dangling rid %d in index %s", ent.RID, n.Index.Name)
			}
			fetches++
		} else {
			row = ent.Key
		}
		ok, err := pred(row)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, row)
		}
	}
	if c != nil {
		// Key pages actually traversed, plus one random heap page per
		// fetched row — the cost model's random-I/O unit.
		st := c.at(n)
		st.Scanned += scanned
		st.Pages += storage.PagesFor(keyBytes) + fetches
	}
	return out, nil
}

func (e *run) filter(n *plan.Filter, c *Collector) ([]datum.Row, error) {
	in, err := e.exec(n.Child, c)
	if err != nil {
		return nil, err
	}
	pred, err := compilePreds(n.Preds, n.Child.Schema())
	if err != nil {
		return nil, err
	}
	var out []datum.Row
	for _, r := range in {
		ok, err := pred(r)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, r)
		}
	}
	return out, nil
}

func (e *run) project(n *plan.Project, c *Collector) ([]datum.Row, error) {
	in, err := e.exec(n.Child, c)
	if err != nil {
		return nil, err
	}
	fns := make([]evalFunc, len(n.Exprs))
	for i, ex := range n.Exprs {
		f, err := compile(ex, n.Child.Schema())
		if err != nil {
			return nil, err
		}
		fns[i] = f
	}
	out := make([]datum.Row, 0, len(in))
	for _, r := range in {
		row := make(datum.Row, len(fns))
		for i, f := range fns {
			v, err := f(r)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		out = append(out, row)
	}
	return out, nil
}

func (e *run) sortNode(n *plan.Sort, c *Collector) ([]datum.Row, error) {
	in, err := e.exec(n.Child, c)
	if err != nil {
		return nil, err
	}
	fns := make([]evalFunc, len(n.Keys))
	for i, k := range n.Keys {
		f, err := compile(k.Expr, n.Child.Schema())
		if err != nil {
			return nil, err
		}
		fns[i] = f
	}
	type keyed struct {
		row  datum.Row
		keys datum.Row
	}
	ks := make([]keyed, len(in))
	for i, r := range in {
		keys := make(datum.Row, len(fns))
		for j, f := range fns {
			v, err := f(r)
			if err != nil {
				return nil, err
			}
			keys[j] = v
		}
		ks[i] = keyed{row: r, keys: keys}
	}
	sort.SliceStable(ks, func(a, b int) bool {
		for j := range fns {
			c := ks[a].keys[j].Compare(ks[b].keys[j])
			if n.Keys[j].Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	out := make([]datum.Row, len(ks))
	for i := range ks {
		out[i] = ks[i].row
	}
	return out, nil
}

func (e *run) limit(n *plan.Limit, c *Collector) ([]datum.Row, error) {
	in, err := e.exec(n.Child, c)
	if err != nil {
		return nil, err
	}
	if int64(len(in)) > n.N {
		in = in[:n.N]
	}
	return in, nil
}

func (e *run) distinct(n *plan.Distinct, c *Collector) ([]datum.Row, error) {
	in, err := e.exec(n.Child, c)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []datum.Row
	for _, r := range in {
		k := rowKey(r)
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out, nil
}

// rowKey builds a collision-free grouping key.
func rowKey(r datum.Row) string {
	var sb strings.Builder
	for _, d := range r {
		sb.WriteString(d.String())
		sb.WriteByte('\x00')
	}
	return sb.String()
}

func (e *run) hashJoin(n *plan.HashJoin, c *Collector) ([]datum.Row, error) {
	left, err := e.exec(n.Left, c)
	if err != nil {
		return nil, err
	}
	right, err := e.exec(n.Right, c)
	if err != nil {
		return nil, err
	}
	lf := make([]evalFunc, len(n.LeftKeys))
	rf := make([]evalFunc, len(n.RightKeys))
	for i := range n.LeftKeys {
		if lf[i], err = compile(n.LeftKeys[i], n.Left.Schema()); err != nil {
			return nil, err
		}
		if rf[i], err = compile(n.RightKeys[i], n.Right.Schema()); err != nil {
			return nil, err
		}
	}
	table := make(map[string][]datum.Row, len(right))
	for _, r := range right {
		k, null, err := keyOf(r, rf)
		if err != nil {
			return nil, err
		}
		if null {
			continue
		}
		table[k] = append(table[k], r)
	}
	var out []datum.Row
	for _, l := range left {
		k, null, err := keyOf(l, lf)
		if err != nil {
			return nil, err
		}
		if null {
			continue
		}
		for _, r := range table[k] {
			combined := make(datum.Row, 0, len(l)+len(r))
			combined = append(combined, l...)
			combined = append(combined, r...)
			out = append(out, combined)
		}
	}
	return out, nil
}

func keyOf(r datum.Row, fns []evalFunc) (string, bool, error) {
	key := make(datum.Row, len(fns))
	for i, f := range fns {
		v, err := f(r)
		if err != nil {
			return "", false, err
		}
		if v.IsNull() {
			return "", true, nil
		}
		key[i] = v
	}
	return rowKey(key), false, nil
}

// mergeJoin sorts both inputs by their join keys (defensively, even when
// the optimizer believes an input is pre-ordered) and merges them with
// group-wise matching so duplicate keys produce the full cross product
// of their groups. Rows with NULL keys never match, as in every join.
func (e *run) mergeJoin(n *plan.MergeJoin, c *Collector) ([]datum.Row, error) {
	left, err := e.exec(n.Left, c)
	if err != nil {
		return nil, err
	}
	right, err := e.exec(n.Right, c)
	if err != nil {
		return nil, err
	}
	lKeyed, err := sortByKeys(left, n.LeftKeys, n.Left.Schema())
	if err != nil {
		return nil, err
	}
	rKeyed, err := sortByKeys(right, n.RightKeys, n.Right.Schema())
	if err != nil {
		return nil, err
	}
	var out []datum.Row
	i, j := 0, 0
	for i < len(lKeyed) && j < len(rKeyed) {
		c := lKeyed[i].key.Compare(rKeyed[j].key)
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			// Find both groups of equal keys and emit their product.
			iEnd := i + 1
			for iEnd < len(lKeyed) && lKeyed[iEnd].key.Compare(lKeyed[i].key) == 0 {
				iEnd++
			}
			jEnd := j + 1
			for jEnd < len(rKeyed) && rKeyed[jEnd].key.Compare(rKeyed[j].key) == 0 {
				jEnd++
			}
			for a := i; a < iEnd; a++ {
				for b := j; b < jEnd; b++ {
					combined := make(datum.Row, 0, len(lKeyed[a].row)+len(rKeyed[b].row))
					combined = append(combined, lKeyed[a].row...)
					combined = append(combined, rKeyed[b].row...)
					out = append(out, combined)
				}
			}
			i, j = iEnd, jEnd
		}
	}
	return out, nil
}

type keyedRow struct {
	row datum.Row
	key datum.Row
}

// sortByKeys evaluates the join keys for each row, drops NULL-keyed rows
// (they can never match), and sorts by key.
func sortByKeys(rows []datum.Row, keys []sql.Expr, schema []plan.ColRef) ([]keyedRow, error) {
	fns := make([]evalFunc, len(keys))
	for i, k := range keys {
		f, err := compile(k, schema)
		if err != nil {
			return nil, err
		}
		fns[i] = f
	}
	out := make([]keyedRow, 0, len(rows))
	for _, r := range rows {
		key := make(datum.Row, len(fns))
		null := false
		for i, f := range fns {
			v, err := f(r)
			if err != nil {
				return nil, err
			}
			if v.IsNull() {
				null = true
				break
			}
			key[i] = v
		}
		if null {
			continue
		}
		out = append(out, keyedRow{row: r, key: key})
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].key.Compare(out[b].key) < 0 })
	return out, nil
}

func (e *run) crossJoin(n *plan.CrossJoin, c *Collector) ([]datum.Row, error) {
	left, err := e.exec(n.Left, c)
	if err != nil {
		return nil, err
	}
	right, err := e.exec(n.Right, c)
	if err != nil {
		return nil, err
	}
	var out []datum.Row
	for _, l := range left {
		for _, r := range right {
			combined := make(datum.Row, 0, len(l)+len(r))
			combined = append(combined, l...)
			combined = append(combined, r...)
			out = append(out, combined)
		}
	}
	return out, nil
}

func (e *run) inlJoin(n *plan.INLJoin, c *Collector) ([]datum.Row, error) {
	outer, err := e.exec(n.Outer, c)
	if err != nil {
		return nil, err
	}
	pi := e.mgr.Index(n.Index.ID())
	if pi == nil || pi.State() != storage.StateActive {
		return nil, fmt.Errorf("executor: index %s: %w", n.Index.Name, ErrStaleIndex)
	}
	if err := e.faults.Hit(fault.PageRead); err != nil {
		return nil, fmt.Errorf("executor: lookup join on index %s: %w", n.Index.Name, err)
	}
	h := e.mgr.Heap(n.Index.Table)
	keyFns := make([]evalFunc, len(n.OuterKeys))
	for i, k := range n.OuterKeys {
		if keyFns[i], err = compile(k, n.Outer.Schema()); err != nil {
			return nil, err
		}
	}
	pred, err := compilePreds(n.Preds, n.Schema())
	if err != nil {
		return nil, err
	}
	fetch := n.Fetch || n.Index.Primary
	var out []datum.Row
	var scanned, keyBytes, fetches int64
	for _, orow := range outer {
		key := make(datum.Row, len(keyFns))
		null := false
		for i, f := range keyFns {
			v, err := f(orow)
			if err != nil {
				return nil, err
			}
			if v.IsNull() {
				null = true
				break
			}
			key[i] = v
		}
		if null {
			continue
		}
		for it := pi.Tree().Seek(key, true, key, true); it.Valid(); it.Next() {
			ent := it.Entry()
			scanned++
			if err := e.tick(); err != nil {
				return nil, err
			}
			keyBytes += int64(ent.Key.Width())
			var irow datum.Row
			if fetch {
				irow = h.Get(ent.RID)
				if irow == nil {
					return nil, fmt.Errorf("executor: dangling rid %d in index %s", ent.RID, n.Index.Name)
				}
				fetches++
			} else {
				irow = ent.Key
			}
			combined := make(datum.Row, 0, len(orow)+len(irow))
			combined = append(combined, orow...)
			combined = append(combined, irow...)
			ok, err := pred(combined)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, combined)
			}
		}
	}
	if c != nil {
		st := c.at(n)
		st.Scanned += scanned
		st.Pages += storage.PagesFor(keyBytes) + fetches
	}
	return out, nil
}

// aggState accumulates one aggregate within one group.
type aggState struct {
	count int64
	sum   float64
	sumI  int64
	isInt bool
	min   datum.Datum
	max   datum.Datum
	first datum.Datum
	has   bool
}

func (a *aggState) add(v datum.Datum) {
	if !a.has {
		a.first = v
		a.min, a.max = v, v
		a.isInt = v.Kind() == datum.KInt
		a.has = true
	}
	if v.IsNull() {
		return
	}
	a.count++
	switch v.Kind() {
	case datum.KInt:
		a.sumI += v.Int()
		a.sum += float64(v.Int())
	case datum.KFloat, datum.KDate, datum.KBool:
		a.isInt = false
		a.sum += v.Float()
	}
	if v.Compare(a.min) < 0 || a.min.IsNull() {
		a.min = v
	}
	if v.Compare(a.max) > 0 {
		a.max = v
	}
}

func (a *aggState) result(fn string) datum.Datum {
	switch fn {
	case "COUNT":
		return datum.NewInt(a.count)
	case "SUM":
		if a.count == 0 {
			return datum.Null
		}
		if a.isInt {
			return datum.NewInt(a.sumI)
		}
		return datum.NewFloat(a.sum)
	case "AVG":
		if a.count == 0 {
			return datum.Null
		}
		return datum.NewFloat(a.sum / float64(a.count))
	case "MIN":
		if !a.has {
			return datum.Null
		}
		return a.min
	case "MAX":
		if !a.has {
			return datum.Null
		}
		return a.max
	case "FIRST":
		if !a.has {
			return datum.Null
		}
		return a.first
	}
	return datum.Null
}

func (e *run) hashAgg(n *plan.HashAgg, c *Collector) ([]datum.Row, error) {
	in, err := e.exec(n.Child, c)
	if err != nil {
		return nil, err
	}
	schema := n.Child.Schema()
	groupFns := make([]evalFunc, len(n.GroupBy))
	for i, g := range n.GroupBy {
		if groupFns[i], err = compile(g, schema); err != nil {
			return nil, err
		}
	}
	argFns := make([]evalFunc, len(n.Aggs))
	for i, a := range n.Aggs {
		if a.Star {
			continue
		}
		if argFns[i], err = compile(a.Arg, schema); err != nil {
			return nil, err
		}
	}
	type group struct {
		states []*aggState
	}
	groups := map[string]*group{}
	var order []string
	for _, r := range in {
		gkey := make(datum.Row, len(groupFns))
		for i, f := range groupFns {
			v, err := f(r)
			if err != nil {
				return nil, err
			}
			gkey[i] = v
		}
		k := rowKey(gkey)
		g, ok := groups[k]
		if !ok {
			g = &group{states: make([]*aggState, len(n.Aggs))}
			for i := range g.states {
				g.states[i] = &aggState{}
			}
			groups[k] = g
			order = append(order, k)
		}
		for i, a := range n.Aggs {
			if a.Star {
				g.states[i].add(datum.NewInt(1))
				continue
			}
			v, err := argFns[i](r)
			if err != nil {
				return nil, err
			}
			g.states[i].add(v)
		}
	}
	// A global aggregate over zero rows still yields one row.
	if len(groups) == 0 && len(n.GroupBy) == 0 {
		row := make(datum.Row, len(n.Aggs))
		empty := &aggState{}
		for i, a := range n.Aggs {
			row[i] = empty.result(a.Func)
		}
		return []datum.Row{row}, nil
	}
	out := make([]datum.Row, 0, len(groups))
	for _, k := range order {
		g := groups[k]
		row := make(datum.Row, len(n.Aggs))
		for i, a := range n.Aggs {
			fn := a.Func
			if a.Star {
				fn = "COUNT"
			}
			row[i] = g.states[i].result(fn)
		}
		out = append(out, row)
	}
	return out, nil
}

func (e *run) runInsert(n *plan.InsertNode, c *Collector) (*ResultSet, error) {
	rows := n.Literals
	if n.Source != nil {
		src, err := e.exec(n.Source, c)
		if err != nil {
			return nil, err
		}
		rows = src
	}
	t := e.cat.Table(n.Table)
	if t == nil {
		return nil, fmt.Errorf("executor: unknown table %s", n.Table)
	}
	// Statement-level atomicity: a failure on any row (injected write
	// fault, cancellation) retracts every row this statement already
	// applied, so a failed INSERT inserts nothing.
	var applied []storage.RID
	for _, r := range rows {
		if len(r) != len(t.Columns) {
			return nil, fmt.Errorf("executor: INSERT arity %d != %d for %s", len(r), len(t.Columns), n.Table)
		}
		rid, _, err := e.mgr.Insert(n.Table, r.Clone())
		if err == nil {
			err = e.tick()
			if err != nil {
				applied = append(applied, rid)
			}
		}
		if err != nil {
			for i := len(applied) - 1; i >= 0; i-- {
				e.mgr.UndoInsert(n.Table, applied[i])
			}
			return nil, err
		}
		applied = append(applied, rid)
	}
	return &ResultSet{Affected: len(rows)}, nil
}

func (e *run) runUpdate(n *plan.UpdateNode) (*ResultSet, error) {
	t := e.cat.Table(n.Table)
	if t == nil {
		return nil, fmt.Errorf("executor: unknown table %s", n.Table)
	}
	h := e.mgr.Heap(n.Table)
	if h == nil {
		return nil, fmt.Errorf("executor: table %s not materialized", n.Table)
	}
	schema := plan.TableSchema(t, "")
	pred, err := compilePreds(n.Where, schema)
	if err != nil {
		return nil, err
	}
	setFns := make([]evalFunc, len(n.Set))
	setOrds := make([]int, len(n.Set))
	for i, a := range n.Set {
		ord := t.ColumnIndex(a.Column)
		if ord < 0 {
			return nil, fmt.Errorf("executor: unknown column %s", a.Column)
		}
		setOrds[i] = ord
		if setFns[i], err = compile(a.Value, schema); err != nil {
			return nil, err
		}
	}
	// Collect matches first: mutating while scanning would be unsound.
	type match struct {
		rid storage.RID
		row datum.Row
	}
	var matches []match
	var scanErr error
	h.Scan(func(rid storage.RID, r datum.Row) bool {
		ok, err := pred(r)
		if err != nil {
			scanErr = err
			return false
		}
		if ok {
			matches = append(matches, match{rid: rid, row: r})
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	type appliedUpdate struct {
		rid storage.RID
		old datum.Row
	}
	var applied []appliedUpdate
	rollback := func() {
		for i := len(applied) - 1; i >= 0; i-- {
			e.mgr.UndoUpdate(n.Table, applied[i].rid, applied[i].old)
		}
	}
	for _, mt := range matches {
		newRow := mt.row.Clone()
		for i, f := range setFns {
			v, err := f(mt.row)
			if err != nil {
				rollback()
				return nil, err
			}
			newRow[setOrds[i]] = v
		}
		if _, err := e.mgr.Update(n.Table, mt.rid, newRow); err != nil {
			rollback()
			return nil, err
		}
		applied = append(applied, appliedUpdate{rid: mt.rid, old: mt.row})
		if err := e.tick(); err != nil {
			rollback()
			return nil, err
		}
	}
	return &ResultSet{Affected: len(matches)}, nil
}

func (e *run) runDelete(n *plan.DeleteNode) (*ResultSet, error) {
	t := e.cat.Table(n.Table)
	if t == nil {
		return nil, fmt.Errorf("executor: unknown table %s", n.Table)
	}
	h := e.mgr.Heap(n.Table)
	if h == nil {
		return nil, fmt.Errorf("executor: table %s not materialized", n.Table)
	}
	pred, err := compilePreds(n.Where, plan.TableSchema(t, ""))
	if err != nil {
		return nil, err
	}
	type doomed struct {
		rid storage.RID
		row datum.Row
	}
	var targets []doomed
	var scanErr error
	h.Scan(func(rid storage.RID, r datum.Row) bool {
		ok, err := pred(r)
		if err != nil {
			scanErr = err
			return false
		}
		if ok {
			targets = append(targets, doomed{rid: rid, row: r})
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	var applied []doomed
	rollback := func() {
		for i := len(applied) - 1; i >= 0; i-- {
			e.mgr.UndoDelete(n.Table, applied[i].rid, applied[i].row)
		}
	}
	for _, d := range targets {
		if _, err := e.mgr.Delete(n.Table, d.rid); err != nil {
			rollback()
			return nil, err
		}
		applied = append(applied, d)
		if err := e.tick(); err != nil {
			rollback()
			return nil, err
		}
	}
	return &ResultSet{Affected: len(targets)}, nil
}

var _ = sql.Statement(nil)
