package executor

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/datum"
	"onlinetuner/internal/fault"
	"onlinetuner/internal/par"
	"onlinetuner/internal/plan"
	"onlinetuner/internal/sql"
	"onlinetuner/internal/storage"
)

// ErrStaleIndex reports that a plan referenced an index that is no
// longer active — under concurrency the tuner may drop an index between
// a statement's optimization and its execution. The engine treats this
// as retryable: it re-optimizes under the current configuration.
var ErrStaleIndex = errors.New("index not active")

// Executor runs physical plans against a storage manager. Scans and
// CPU-heavy operators execute morsel-parallel on a bounded worker pool
// (see parallel.go); results are byte-identical to sequential execution
// at every worker setting.
type Executor struct {
	cat *catalog.Catalog
	mgr *storage.Manager
	// pool bounds intra-query parallelism; swapped atomically so the
	// engine can reconfigure while statements run (in-flight statements
	// keep the pool they resolved at start).
	pool atomic.Pointer[par.Pool]
	// Metric hooks (nil = no-op): morselsAdd counts morsels dispatched
	// to parallel regions, busyAdd tracks extra workers in flight. The
	// executor cannot import the metrics registry (the engine owns it),
	// so the engine injects adders.
	morselsAdd atomic.Pointer[func(int64)]
	busyAdd    atomic.Pointer[func(int64)]
	// engineMode selects row/vectorized/adaptive execution (see
	// EngineMode in vecengine.go); swapped atomically like the pool,
	// with in-flight statements keeping the mode they resolved at start.
	engineMode atomic.Int32
}

// New returns an executor with a worker pool sized to GOMAXPROCS.
func New(cat *catalog.Catalog, mgr *storage.Manager) *Executor {
	e := &Executor{cat: cat, mgr: mgr}
	e.pool.Store(par.NewPool(0))
	return e
}

// SetWorkers resizes the intra-query worker pool; n <= 0 selects
// GOMAXPROCS. Results are byte-identical at every setting.
func (e *Executor) SetWorkers(n int) { e.pool.Store(par.NewPool(n)) }

// SetPool installs an externally owned worker pool, letting the engine
// share one slot budget between the executor and other parallel
// consumers (index-build sorts).
func (e *Executor) SetPool(p *par.Pool) { e.pool.Store(p) }

// Workers returns the configured intra-query worker count.
func (e *Executor) Workers() int { return e.pool.Load().Workers() }

// SetEngineMode selects the execution engine (auto/row/vector). Results
// are byte-identical under every mode; only the evaluation strategy and
// its speed change.
func (e *Executor) SetEngineMode(m EngineMode) { e.engineMode.Store(int32(m)) }

// Engine returns the configured engine mode.
func (e *Executor) Engine() EngineMode { return EngineMode(e.engineMode.Load()) }

// SetParallelMetrics installs the engine's metric adders: morsels
// receives the morsel count of each parallel region, busy the delta of
// extra workers entering (+) and leaving (-) parallel regions.
func (e *Executor) SetParallelMetrics(morsels, busy func(int64)) {
	if morsels != nil {
		e.morselsAdd.Store(&morsels)
	}
	if busy != nil {
		e.busyAdd.Store(&busy)
	}
}

// ResultSet is the materialized output of a statement.
type ResultSet struct {
	Columns  []string
	Rows     []datum.Row
	Affected int // rows changed by DML
}

// Run executes a plan and returns its result set.
func (e *Executor) Run(p plan.Node) (*ResultSet, error) {
	return e.RunContext(context.Background(), p, nil)
}

// RunCollected executes a plan recording per-operator actuals (rows,
// scanned entries, page traffic, timings) into the collector — the
// execution side of EXPLAIN ANALYZE. A nil collector makes it
// equivalent to Run: the instrumentation reduces to a nil check.
func (e *Executor) RunCollected(p plan.Node, c *Collector) (*ResultSet, error) {
	return e.RunContext(context.Background(), p, c)
}

// ctxCheckEvery bounds how many rows an operator processes between
// context polls: cancellation and deadlines take effect mid-scan, not
// only at operator boundaries.
const ctxCheckEvery = 1024

// run is the per-execution state threaded through the operator tree:
// the caller's context, the storage layer's fault injector (resolved
// once per statement), and the row countdown to the next context poll.
// It embeds the shared Executor, so operator code reads e.cat/e.mgr
// unchanged.
type run struct {
	*Executor
	ctx       context.Context
	faults    *fault.Injector
	pool      *par.Pool
	mode      EngineMode
	countdown int
}

// metricMorsels / metricBusy feed the engine-injected metric adders;
// both are nil-safe no-ops when the engine has not wired metrics.
func (e *run) metricMorsels(n int64) {
	if f := e.morselsAdd.Load(); f != nil {
		(*f)(n)
	}
}

func (e *run) metricBusy(n int64) {
	if f := e.busyAdd.Load(); f != nil {
		(*f)(n)
	}
}

// tick is called once per scanned row; every ctxCheckEvery rows it
// polls the context so a cancelled statement stops promptly.
func (e *run) tick() error {
	e.countdown--
	if e.countdown > 0 {
		return nil
	}
	e.countdown = ctxCheckEvery
	return e.ctx.Err()
}

// RunContext executes a plan under a context: cancellation or deadline
// expiry aborts the statement between operators and (for scans) every
// ctxCheckEvery rows. Read operators consult the storage manager's
// fault injector (PageRead), so injected read failures surface here as
// statement errors with nothing to roll back.
func (e *Executor) RunContext(ctx context.Context, p plan.Node, c *Collector) (*ResultSet, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r := &run{Executor: e, ctx: ctx, faults: e.mgr.Faults(), pool: e.pool.Load(), mode: EngineMode(e.engineMode.Load()), countdown: ctxCheckEvery}
	switch n := p.(type) {
	case *plan.InsertNode:
		return r.timedDML(p, c, func() (*ResultSet, error) { return r.runInsert(n, c) })
	case *plan.UpdateNode:
		return r.timedDML(p, c, func() (*ResultSet, error) { return r.runUpdate(n) })
	case *plan.DeleteNode:
		return r.timedDML(p, c, func() (*ResultSet, error) { return r.runDelete(n) })
	}
	rows, err := r.exec(p, c)
	if err != nil {
		return nil, err
	}
	return &ResultSet{Columns: schemaColumns(p.Schema()), Rows: rows}, nil
}

// exec evaluates a read-only subtree outside a full statement run —
// unit tests and internal callers that hold a plan fragment rather
// than a statement root.
func (e *Executor) exec(p plan.Node, c *Collector) ([]datum.Row, error) {
	r := &run{Executor: e, ctx: context.Background(), faults: e.mgr.Faults(), pool: e.pool.Load(), mode: EngineMode(e.engineMode.Load()), countdown: ctxCheckEvery}
	return r.exec(p, c)
}

// timedDML wraps a DML root so its affected-row count and duration are
// collected like any other operator's.
func (e *run) timedDML(p plan.Node, c *Collector, run func() (*ResultSet, error)) (*ResultSet, error) {
	if c == nil {
		return run()
	}
	start := time.Now()
	rs, err := run()
	st := c.at(p)
	st.addDuration(time.Since(start))
	if rs != nil {
		st.addRows(int64(rs.Affected))
	}
	return rs, err
}

// exec evaluates a read-only operator subtree, recording actuals into
// the collector when one is attached.
func (e *run) exec(p plan.Node, c *Collector) ([]datum.Row, error) {
	if c == nil {
		return e.execNode(p, nil)
	}
	start := time.Now()
	rows, err := e.execNode(p, c)
	st := c.at(p)
	st.addDuration(time.Since(start))
	st.addRows(int64(len(rows)))
	return rows, err
}

func (e *run) execNode(p plan.Node, c *Collector) ([]datum.Row, error) {
	switch n := p.(type) {
	case *plan.SeqScan:
		return e.seqScan(n, c)
	case *plan.IndexScan:
		return e.indexScan(n, c)
	case *plan.IndexSeek:
		return e.indexSeek(n, c)
	case *plan.IndexEndpoint:
		return e.indexEndpoint(n, c)
	case *plan.Filter:
		return e.filter(n, c)
	case *plan.Project:
		return e.project(n, c)
	case *plan.Sort:
		return e.sortNode(n, c)
	case *plan.Limit:
		return e.limit(n, c)
	case *plan.TopN:
		return e.topN(n, c)
	case *plan.Distinct:
		return e.distinct(n, c)
	case *plan.HashJoin:
		return e.hashJoin(n, c)
	case *plan.HashSemiJoin:
		return e.hashSemiJoin(n, c)
	case *plan.MergeJoin:
		return e.mergeJoin(n, c)
	case *plan.CrossJoin:
		return e.crossJoin(n, c)
	case *plan.INLJoin:
		return e.inlJoin(n, c)
	case *plan.HashAgg:
		return e.hashAgg(n, c)
	}
	return nil, fmt.Errorf("executor: unsupported node %T", p)
}

func (e *run) seqScan(n *plan.SeqScan, c *Collector) ([]datum.Row, error) {
	h := e.mgr.Heap(n.Table)
	if h == nil {
		return nil, fmt.Errorf("executor: table %s not materialized", n.Table)
	}
	// One unkeyed draw per scan, on the coordinator in plan order — the
	// same stream the sequential executor consumed. Its ordinal then keys
	// the per-morsel draws, so the same morsels fault at every worker
	// count and interleaving.
	ord, err := e.faults.HitOrd(fault.PageRead)
	if err != nil {
		return nil, fmt.Errorf("executor: scan of %s: %w", n.Table, err)
	}
	slots := h.Slots()
	vf, vok := compileVecFilter(n.Preds, n.Schema())
	useVec := vok && e.vecOn(slots)
	markEngine(c, n, useVec)
	var pred func(datum.Row) (bool, error)
	if !useVec {
		if pred, err = compilePreds(n.Preds, n.Schema()); err != nil {
			return nil, err
		}
	}
	var scanned atomic.Int64
	work := func(i int) (*datum.Batch, error) {
		if ferr := e.faults.HitKeyed(fault.PageRead, morselKey(ord, i)); ferr != nil {
			return nil, fmt.Errorf("executor: scan of %s: %w", n.Table, ferr)
		}
		b := datum.NewBatch(0)
		if useVec {
			// Columnar emission: pull the whole morsel's live rows in
			// one lock round, then filter with the predicate kernels.
			w := getVecWork()
			rows := h.ScanRangeRows(storage.RID(i*morselRows), storage.RID((i+1)*morselRows),
				w.rows[:0])
			scanned.Add(int64(len(rows)))
			for _, k := range vf.vecApply(&w.s, rows) {
				b.Append(rows[k])
			}
			// The batch copied the surviving row headers; only the
			// buffer (not the rows it points at) is recycled.
			w.rows = rows
			putVecWork(w)
			return b, nil
		}
		var sc int64
		var werr error
		h.ScanRange(storage.RID(i*morselRows), storage.RID((i+1)*morselRows),
			func(_ storage.RID, r datum.Row) bool {
				sc++
				ok, perr := pred(r)
				if perr != nil {
					werr = perr
					return false
				}
				if ok {
					b.Append(r)
				}
				return true
			})
		scanned.Add(sc)
		return b, werr
	}
	chunks := chunkBounds(slots)
	visited := chunks
	var out []datum.Row
	if n.Stop > 0 {
		out, visited, err = e.runStopped(chunks, n.Stop, work)
	} else {
		err = runMorsels(e, "seqscan "+n.Table, chunks, work,
			func(_ int, b *datum.Batch) error {
				out = append(out, b.Rows()...)
				return nil
			})
	}
	if c != nil {
		st := c.at(n)
		st.addScanned(scanned.Load())
		pages := h.Pages() // a full scan reads the whole heap
		if visited < chunks && chunks > 0 {
			pages = pages * int64(visited) / int64(chunks)
		}
		st.addPages(pages)
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// markEngine records an operator's resolved evaluation strategy for
// EXPLAIN ANALYZE provenance.
func markEngine(c *Collector, n plan.Node, vectorized bool) {
	if c != nil {
		c.at(n).setEngine(vectorized)
	}
}

func (e *run) indexScan(n *plan.IndexScan, c *Collector) ([]datum.Row, error) {
	pi := e.mgr.Index(n.Index.ID())
	if pi == nil || pi.State() != storage.StateActive {
		return nil, fmt.Errorf("executor: index %s: %w", n.Index.Name, ErrStaleIndex)
	}
	ord, err := e.faults.HitOrd(fault.PageRead)
	if err != nil {
		return nil, fmt.Errorf("executor: scan of index %s: %w", n.Index.Name, err)
	}
	// Shards are leaf runs of the tree — a pure function of its contents,
	// so the morsel decomposition (and the fault keys below) are identical
	// at every worker count.
	shards := pi.Tree().Shards(morselRows)
	entries := 0
	for _, s := range shards {
		entries += s.N
	}
	vf, vok := compileVecFilter(n.Preds, n.Schema())
	useVec := vok && e.vecOn(entries)
	markEngine(c, n, useVec)
	var pred func(datum.Row) (bool, error)
	if !useVec {
		if pred, err = compilePreds(n.Preds, n.Schema()); err != nil {
			return nil, err
		}
	}
	var scanned atomic.Int64
	work := func(i int) (*datum.Batch, error) {
		if ferr := e.faults.HitKeyed(fault.PageRead, morselKey(ord, i)); ferr != nil {
			return nil, fmt.Errorf("executor: scan of index %s: %w", n.Index.Name, ferr)
		}
		b := datum.NewBatch(0)
		it := shards[i].It
		if useVec {
			w := getVecWork()
			rows := w.rows[:0]
			for k := 0; k < shards[i].N; k++ {
				rows = append(rows, it.Entry().Key)
				it.Next()
			}
			for _, k := range vf.vecApply(&w.s, rows) {
				b.Append(rows[k])
			}
			scanned.Add(int64(shards[i].N))
			w.rows = rows
			putVecWork(w)
			return b, nil
		}
		for k := 0; k < shards[i].N; k++ {
			row := it.Entry().Key
			it.Next()
			ok, perr := pred(row)
			if perr != nil {
				return nil, perr
			}
			if ok {
				b.Append(row)
			}
		}
		scanned.Add(int64(shards[i].N))
		return b, nil
	}
	visited := len(shards)
	var out []datum.Row
	if n.Stop > 0 {
		out, visited, err = e.runStopped(len(shards), n.Stop, work)
	} else {
		err = runMorsels(e, "indexscan "+n.Index.Name, len(shards), work,
			func(_ int, b *datum.Batch) error {
				out = append(out, b.Rows()...)
				return nil
			})
	}
	if c != nil {
		st := c.at(n)
		st.addScanned(scanned.Load())
		pages := pi.Pages() // a full scan reads the whole index
		if visited < len(shards) && len(shards) > 0 {
			pages = pages * int64(visited) / int64(len(shards))
		}
		st.addPages(pages)
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (e *run) indexSeek(n *plan.IndexSeek, c *Collector) ([]datum.Row, error) {
	pi := e.mgr.Index(n.Index.ID())
	if pi == nil || pi.State() != storage.StateActive {
		return nil, fmt.Errorf("executor: index %s: %w", n.Index.Name, ErrStaleIndex)
	}
	if err := e.faults.Hit(fault.PageRead); err != nil {
		return nil, fmt.Errorf("executor: seek on index %s: %w", n.Index.Name, err)
	}
	// Point-lookup fast path: a seek touches few rows and is inherently
	// ordered, so it always stays row-at-a-time regardless of mode.
	markEngine(c, n, false)
	h := e.mgr.Heap(n.Index.Table)
	pred, err := compilePreds(n.Preds, n.Schema())
	if err != nil {
		return nil, err
	}
	lo := append(datum.Row(nil), n.EqVals...)
	hi := append(datum.Row(nil), n.EqVals...)
	loInc, hiInc := true, true
	if n.Lo != nil {
		lo = append(lo, *n.Lo)
		loInc = n.LoInc
	}
	if n.Hi != nil {
		hi = append(hi, *n.Hi)
		hiInc = n.HiInc
	}
	var it *storage.Iterator
	switch {
	case len(lo) == 0 && len(hi) == 0:
		it = pi.Tree().Scan()
	case len(lo) == 0:
		it = pi.Tree().Seek(datum.Row{datum.Null}, true, hi, hiInc)
	default:
		if len(hi) == 0 {
			it = pi.Tree().Seek(lo, loInc, nil, false)
		} else {
			it = pi.Tree().Seek(lo, loInc, hi, hiInc)
		}
	}
	var out []datum.Row
	var scanned, keyBytes, fetches int64
	for ; it.Valid(); it.Next() {
		ent := it.Entry()
		scanned++
		// Per-batch cancellation tick: a seek is inherently ordered, so it
		// stays sequential but polls the context every morselRows entries.
		if scanned%morselRows == 0 {
			if err := e.ctx.Err(); err != nil {
				return nil, err
			}
		}
		keyBytes += int64(ent.Key.Width())
		var row datum.Row
		if n.Fetch || n.Index.Primary {
			row = h.Get(ent.RID)
			if row == nil {
				return nil, fmt.Errorf("executor: dangling rid %d in index %s", ent.RID, n.Index.Name)
			}
			fetches++
		} else {
			row = ent.Key
		}
		ok, err := pred(row)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, row)
			if n.Stop > 0 && int64(len(out)) >= n.Stop {
				break
			}
		}
	}
	if c != nil {
		// Key pages actually traversed, plus one random heap page per
		// fetched row — the cost model's random-I/O unit.
		st := c.at(n)
		st.addScanned(scanned)
		st.addPages(storage.PagesFor(keyBytes) + fetches)
	}
	return out, nil
}

func (e *run) filter(n *plan.Filter, c *Collector) ([]datum.Row, error) {
	in, err := e.exec(n.Child, c)
	if err != nil {
		return nil, err
	}
	vf, vok := compileVecFilter(n.Preds, n.Child.Schema())
	useVec := vok && e.vecOn(len(in))
	markEngine(c, n, useVec)
	var pred func(datum.Row) (bool, error)
	if !useVec {
		if pred, err = compilePreds(n.Preds, n.Child.Schema()); err != nil {
			return nil, err
		}
	}
	var out []datum.Row
	err = runMorsels(e, "filter", chunkBounds(len(in)),
		func(i int) (*datum.Batch, error) {
			b := datum.NewBatch(0)
			rows := chunkOf(in, i)
			if useVec {
				w := getVecWork()
				for _, k := range vf.vecApply(&w.s, rows) {
					b.Append(rows[k])
				}
				putVecWork(w)
				return b, nil
			}
			for _, r := range rows {
				ok, perr := pred(r)
				if perr != nil {
					return nil, perr
				}
				if ok {
					b.Append(r)
				}
			}
			return b, nil
		},
		func(_ int, b *datum.Batch) error {
			out = append(out, b.Rows()...)
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (e *run) project(n *plan.Project, c *Collector) ([]datum.Row, error) {
	in, err := e.exec(n.Child, c)
	if err != nil {
		return nil, err
	}
	fns := make([]evalFunc, len(n.Exprs))
	for i, ex := range n.Exprs {
		f, err := compile(ex, n.Child.Schema())
		if err != nil {
			return nil, err
		}
		fns[i] = f
	}
	ves, vok := compileVecExprs(n.Exprs, n.Child.Schema())
	useVec := vok && e.vecOn(len(in))
	markEngine(c, n, useVec)
	out := make([]datum.Row, 0, len(in))
	err = runMorsels(e, "project", chunkBounds(len(in)),
		func(i int) (*datum.Batch, error) {
			rows := chunkOf(in, i)
			// Output rows are carved from the batch's arena slab instead of
			// one allocation per row.
			b := datum.NewBatch(len(rows))
			if useVec {
				w := getVecWork()
				ok := projectVec(ves, rows, b, &w.m)
				putVecWork(w)
				if ok {
					return b, nil
				}
			}
			// Scalar path, also the per-morsel kernel fallback (mixed-kind
			// columns, non-numeric arithmetic that must error in row order).
			for _, r := range rows {
				row := b.Alloc(len(fns))
				for j, f := range fns {
					v, ferr := f(r)
					if ferr != nil {
						return nil, ferr
					}
					row[j] = v
				}
			}
			return b, nil
		},
		func(_ int, b *datum.Batch) error {
			out = append(out, b.Rows()...)
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (e *run) sortNode(n *plan.Sort, c *Collector) ([]datum.Row, error) {
	in, err := e.exec(n.Child, c)
	if err != nil {
		return nil, err
	}
	// Sort merges are order-sensitive and stay row-at-a-time.
	markEngine(c, n, false)
	fns := make([]evalFunc, len(n.Keys))
	for i, k := range n.Keys {
		f, err := compile(k.Expr, n.Child.Schema())
		if err != nil {
			return nil, err
		}
		fns[i] = f
	}
	type keyed struct {
		row  datum.Row
		keys datum.Row
	}
	// Key extraction is chunk-parallel: workers write disjoint index
	// ranges of ks, so no synchronization is needed beyond runMorsels'.
	ks := make([]keyed, len(in))
	err = runMorsels(e, "sort-keys", chunkBounds(len(in)),
		func(i int) (struct{}, error) {
			lo := i * morselRows
			for j, r := range chunkOf(in, i) {
				keys := make(datum.Row, len(fns))
				for k, f := range fns {
					v, ferr := f(r)
					if ferr != nil {
						return struct{}{}, ferr
					}
					keys[k] = v
				}
				ks[lo+j] = keyed{row: r, keys: keys}
			}
			return struct{}{}, nil
		},
		func(int, struct{}) error { return nil })
	if err != nil {
		return nil, err
	}
	// A stable sort's output is unique, so the parallel merge sort yields
	// exactly what sort.SliceStable did. Sort workers come out of the
	// statement pool's slot budget, like every other parallel region.
	par.SortStablePooled(e.pool, ks, func(a, b keyed) int {
		for j := range fns {
			c := a.keys[j].Compare(b.keys[j])
			if n.Keys[j].Desc {
				c = -c
			}
			if c != 0 {
				return c
			}
		}
		return 0
	})
	out := make([]datum.Row, len(ks))
	for i := range ks {
		out[i] = ks[i].row
	}
	return out, nil
}

func (e *run) limit(n *plan.Limit, c *Collector) ([]datum.Row, error) {
	in, err := e.exec(n.Child, c)
	if err != nil {
		return nil, err
	}
	if int64(len(in)) > n.N {
		in = in[:n.N]
	}
	return in, nil
}

func (e *run) distinct(n *plan.Distinct, c *Collector) ([]datum.Row, error) {
	in, err := e.exec(n.Child, c)
	if err != nil {
		return nil, err
	}
	// Dedup is first-occurrence-order-sensitive and stays row-at-a-time.
	markEngine(c, n, false)
	// Key rendering is the expensive part; parallelize it into disjoint
	// ranges, then dedup sequentially in input order (first occurrence
	// wins, as before).
	keys := make([]string, len(in))
	err = runMorsels(e, "distinct-keys", chunkBounds(len(in)),
		func(i int) (struct{}, error) {
			lo := i * morselRows
			for j, r := range chunkOf(in, i) {
				keys[lo+j] = rowKey(r)
			}
			return struct{}{}, nil
		},
		func(int, struct{}) error { return nil })
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []datum.Row
	for i, r := range in {
		if !seen[keys[i]] {
			seen[keys[i]] = true
			out = append(out, r)
		}
	}
	return out, nil
}

// rowKey builds a collision-free grouping key: each datum's String()
// bytes (via AppendKey, which renders them without fmt overhead)
// terminated by NUL. The vectorized key paths produce these exact
// bytes, so both engines group and join identically.
func rowKey(r datum.Row) string {
	buf := make([]byte, 0, 16*len(r))
	for _, d := range r {
		buf = d.AppendKey(buf)
		buf = append(buf, '\x00')
	}
	return string(buf)
}

func (e *run) hashJoin(n *plan.HashJoin, c *Collector) ([]datum.Row, error) {
	left, err := e.exec(n.Left, c)
	if err != nil {
		return nil, err
	}
	right, err := e.exec(n.Right, c)
	if err != nil {
		return nil, err
	}
	lf := make([]evalFunc, len(n.LeftKeys))
	rf := make([]evalFunc, len(n.RightKeys))
	for i := range n.LeftKeys {
		if lf[i], err = compile(n.LeftKeys[i], n.Left.Schema()); err != nil {
			return nil, err
		}
		if rf[i], err = compile(n.RightKeys[i], n.Right.Schema()); err != nil {
			return nil, err
		}
	}
	lves, lok := compileVecExprs(n.LeftKeys, n.Left.Schema())
	rves, rok := compileVecExprs(n.RightKeys, n.Right.Schema())
	useVec := lok && rok && e.vecOn(len(left)+len(right))
	markEngine(c, n, useVec)
	// Build side: key evaluation is chunk-parallel (columnar when the key
	// expressions compile to kernels); the map insert stays sequential in
	// input order, so per-bucket row order (and therefore output order)
	// matches the sequential executor.
	rkeys := make([]joinKey, len(right))
	err = runMorsels(e, "hashjoin-build", chunkBounds(len(right)),
		func(i int) (struct{}, error) {
			lo := i * morselRows
			rows := chunkOf(right, i)
			if useVec {
				w := getVecWork()
				ok := joinKeysVec(rves, rows, rkeys[lo:lo+len(rows)], &w.m)
				putVecWork(w)
				if ok {
					return struct{}{}, nil
				}
			}
			for j, r := range rows {
				k, null, kerr := keyOf(r, rf)
				if kerr != nil {
					return struct{}{}, kerr
				}
				rkeys[lo+j] = joinKey{k: k, null: null}
			}
			return struct{}{}, nil
		},
		func(int, struct{}) error { return nil })
	if err != nil {
		return nil, err
	}
	table := make(map[string][]datum.Row, len(right))
	for i, r := range right {
		if rkeys[i].null {
			continue
		}
		table[rkeys[i].k] = append(table[rkeys[i].k], r)
	}
	// Probe side: the table is read-only now; probe chunks of the left
	// input in parallel and concatenate in probe order. Key rendering is
	// columnar per morsel when possible, then matching walks row-wise.
	var out []datum.Row
	err = runMorsels(e, "hashjoin-probe", chunkBounds(len(left)),
		func(i int) (*datum.Batch, error) {
			b := datum.NewBatch(0)
			rows := chunkOf(left, i)
			var pkeys []joinKey
			if useVec {
				pkeys = make([]joinKey, len(rows))
				w := getVecWork()
				ok := joinKeysVec(lves, rows, pkeys, &w.m)
				putVecWork(w)
				if !ok {
					pkeys = nil // mixed kinds: scalar fallback for this morsel
				}
			}
			for j, l := range rows {
				var k string
				var null bool
				if pkeys != nil {
					k, null = pkeys[j].k, pkeys[j].null
				} else {
					var kerr error
					if k, null, kerr = keyOf(l, lf); kerr != nil {
						return nil, kerr
					}
				}
				if null {
					continue
				}
				for _, r := range table[k] {
					combined := b.Alloc(len(l) + len(r))
					copy(combined, l)
					copy(combined[len(l):], r)
				}
			}
			return b, nil
		},
		func(_ int, b *datum.Batch) error {
			out = append(out, b.Rows()...)
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func keyOf(r datum.Row, fns []evalFunc) (string, bool, error) {
	key := make(datum.Row, len(fns))
	for i, f := range fns {
		v, err := f(r)
		if err != nil {
			return "", false, err
		}
		if v.IsNull() {
			return "", true, nil
		}
		key[i] = v
	}
	return rowKey(key), false, nil
}

// mergeJoin sorts both inputs by their join keys (defensively, even when
// the optimizer believes an input is pre-ordered) and merges them with
// group-wise matching so duplicate keys produce the full cross product
// of their groups. Rows with NULL keys never match, as in every join.
func (e *run) mergeJoin(n *plan.MergeJoin, c *Collector) ([]datum.Row, error) {
	left, err := e.exec(n.Left, c)
	if err != nil {
		return nil, err
	}
	right, err := e.exec(n.Right, c)
	if err != nil {
		return nil, err
	}
	lKeyed, err := e.sortByKeys(left, n.LeftKeys, n.Left.Schema())
	if err != nil {
		return nil, err
	}
	rKeyed, err := e.sortByKeys(right, n.RightKeys, n.Right.Schema())
	if err != nil {
		return nil, err
	}
	var out []datum.Row
	i, j := 0, 0
	for i < len(lKeyed) && j < len(rKeyed) {
		c := lKeyed[i].key.Compare(rKeyed[j].key)
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			// Find both groups of equal keys and emit their product.
			iEnd := i + 1
			for iEnd < len(lKeyed) && lKeyed[iEnd].key.Compare(lKeyed[i].key) == 0 {
				iEnd++
			}
			jEnd := j + 1
			for jEnd < len(rKeyed) && rKeyed[jEnd].key.Compare(rKeyed[j].key) == 0 {
				jEnd++
			}
			for a := i; a < iEnd; a++ {
				for b := j; b < jEnd; b++ {
					combined := make(datum.Row, 0, len(lKeyed[a].row)+len(rKeyed[b].row))
					combined = append(combined, lKeyed[a].row...)
					combined = append(combined, rKeyed[b].row...)
					out = append(out, combined)
				}
			}
			i, j = iEnd, jEnd
		}
	}
	return out, nil
}

type keyedRow struct {
	row datum.Row
	key datum.Row
}

// sortByKeys evaluates the join keys for each row, drops NULL-keyed rows
// (they can never match), and sorts by key. Key evaluation is chunk-
// parallel with in-order concatenation, and the sort is the parallel
// stable merge sort, so the result is identical to the sequential path.
func (e *run) sortByKeys(rows []datum.Row, keys []sql.Expr, schema []plan.ColRef) ([]keyedRow, error) {
	fns := make([]evalFunc, len(keys))
	for i, k := range keys {
		f, err := compile(k, schema)
		if err != nil {
			return nil, err
		}
		fns[i] = f
	}
	out := make([]keyedRow, 0, len(rows))
	err := runMorsels(e, "mergejoin-keys", chunkBounds(len(rows)),
		func(i int) ([]keyedRow, error) {
			chunk := chunkOf(rows, i)
			o := make([]keyedRow, 0, len(chunk))
			for _, r := range chunk {
				key := make(datum.Row, len(fns))
				null := false
				for k, f := range fns {
					v, ferr := f(r)
					if ferr != nil {
						return nil, ferr
					}
					if v.IsNull() {
						null = true
						break
					}
					key[k] = v
				}
				if null {
					continue
				}
				o = append(o, keyedRow{row: r, key: key})
			}
			return o, nil
		},
		func(_ int, o []keyedRow) error {
			out = append(out, o...)
			return nil
		})
	if err != nil {
		return nil, err
	}
	par.SortStablePooled(e.pool, out, func(a, b keyedRow) int { return a.key.Compare(b.key) })
	return out, nil
}

func (e *run) crossJoin(n *plan.CrossJoin, c *Collector) ([]datum.Row, error) {
	left, err := e.exec(n.Left, c)
	if err != nil {
		return nil, err
	}
	right, err := e.exec(n.Right, c)
	if err != nil {
		return nil, err
	}
	var out []datum.Row
	err = runMorsels(e, "crossjoin", chunkBounds(len(left)),
		func(i int) (*datum.Batch, error) {
			b := datum.NewBatch(0)
			for _, l := range chunkOf(left, i) {
				for _, r := range right {
					combined := b.Alloc(len(l) + len(r))
					copy(combined, l)
					copy(combined[len(l):], r)
				}
			}
			return b, nil
		},
		func(_ int, b *datum.Batch) error {
			out = append(out, b.Rows()...)
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (e *run) inlJoin(n *plan.INLJoin, c *Collector) ([]datum.Row, error) {
	outer, err := e.exec(n.Outer, c)
	if err != nil {
		return nil, err
	}
	pi := e.mgr.Index(n.Index.ID())
	if pi == nil || pi.State() != storage.StateActive {
		return nil, fmt.Errorf("executor: index %s: %w", n.Index.Name, ErrStaleIndex)
	}
	ord, err := e.faults.HitOrd(fault.PageRead)
	if err != nil {
		return nil, fmt.Errorf("executor: lookup join on index %s: %w", n.Index.Name, err)
	}
	h := e.mgr.Heap(n.Index.Table)
	keyFns := make([]evalFunc, len(n.OuterKeys))
	for i, k := range n.OuterKeys {
		if keyFns[i], err = compile(k, n.Outer.Schema()); err != nil {
			return nil, err
		}
	}
	pred, err := compilePreds(n.Preds, n.Schema())
	if err != nil {
		return nil, err
	}
	fetch := n.Fetch || n.Index.Primary
	tree := pi.Tree()
	var scanned, keyBytes, fetches atomic.Int64
	var out []datum.Row
	err = runMorsels(e, "inljoin "+n.Index.Name, chunkBounds(len(outer)),
		func(i int) (*datum.Batch, error) {
			if ferr := e.faults.HitKeyed(fault.PageRead, morselKey(ord, i)); ferr != nil {
				return nil, fmt.Errorf("executor: lookup join on index %s: %w", n.Index.Name, ferr)
			}
			b := datum.NewBatch(0)
			var sc, kb, ft int64
			var scratch datum.Row
			for _, orow := range chunkOf(outer, i) {
				key := make(datum.Row, len(keyFns))
				null := false
				for k, f := range keyFns {
					v, ferr := f(orow)
					if ferr != nil {
						return nil, ferr
					}
					if v.IsNull() {
						null = true
						break
					}
					key[k] = v
				}
				if null {
					continue
				}
				for it := tree.Seek(key, true, key, true); it.Valid(); it.Next() {
					ent := it.Entry()
					sc++
					kb += int64(ent.Key.Width())
					var irow datum.Row
					if fetch {
						irow = h.Get(ent.RID)
						if irow == nil {
							return nil, fmt.Errorf("executor: dangling rid %d in index %s", ent.RID, n.Index.Name)
						}
						ft++
					} else {
						irow = ent.Key
					}
					// Assemble in a scratch row so a predicate miss does not
					// leave a dead row in the batch.
					scratch = append(scratch[:0], orow...)
					scratch = append(scratch, irow...)
					ok, perr := pred(scratch)
					if perr != nil {
						return nil, perr
					}
					if ok {
						combined := b.Alloc(len(scratch))
						copy(combined, scratch)
					}
				}
			}
			scanned.Add(sc)
			keyBytes.Add(kb)
			fetches.Add(ft)
			return b, nil
		},
		func(_ int, b *datum.Batch) error {
			out = append(out, b.Rows()...)
			return nil
		})
	if c != nil {
		st := c.at(n)
		st.addScanned(scanned.Load())
		st.addPages(storage.PagesFor(keyBytes.Load()) + fetches.Load())
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// aggState accumulates one aggregate within one group.
type aggState struct {
	count int64
	sum   float64
	sumI  int64
	isInt bool
	min   datum.Datum
	max   datum.Datum
	first datum.Datum
	has   bool
}

func (a *aggState) add(v datum.Datum) {
	if !a.has {
		a.first = v
		a.min, a.max = v, v
		a.isInt = v.Kind() == datum.KInt
		a.has = true
	}
	if v.IsNull() {
		return
	}
	a.count++
	switch v.Kind() {
	case datum.KInt:
		a.sumI += v.Int()
		a.sum += float64(v.Int())
	case datum.KFloat, datum.KDate, datum.KBool:
		a.isInt = false
		a.sum += v.Float()
	}
	if v.Compare(a.min) < 0 || a.min.IsNull() {
		a.min = v
	}
	if v.Compare(a.max) > 0 {
		a.max = v
	}
}

func (a *aggState) result(fn string) datum.Datum {
	switch fn {
	case "COUNT":
		return datum.NewInt(a.count)
	case "SUM":
		if a.count == 0 {
			return datum.Null
		}
		if a.isInt {
			return datum.NewInt(a.sumI)
		}
		return datum.NewFloat(a.sum)
	case "AVG":
		if a.count == 0 {
			return datum.Null
		}
		return datum.NewFloat(a.sum / float64(a.count))
	case "MIN":
		if !a.has {
			return datum.Null
		}
		return a.min
	case "MAX":
		if !a.has {
			return datum.Null
		}
		return a.max
	case "FIRST":
		if !a.has {
			return datum.Null
		}
		return a.first
	}
	return datum.Null
}

func (e *run) hashAgg(n *plan.HashAgg, c *Collector) ([]datum.Row, error) {
	in, err := e.exec(n.Child, c)
	if err != nil {
		return nil, err
	}
	schema := n.Child.Schema()
	groupFns := make([]evalFunc, len(n.GroupBy))
	for i, g := range n.GroupBy {
		if groupFns[i], err = compile(g, schema); err != nil {
			return nil, err
		}
	}
	argFns := make([]evalFunc, len(n.Aggs))
	for i, a := range n.Aggs {
		if a.Star {
			continue
		}
		if argFns[i], err = compile(a.Arg, schema); err != nil {
			return nil, err
		}
	}
	groupVes, vok := compileVecExprs(n.GroupBy, schema)
	var argVes []vecExpr
	if vok {
		argVes = make([]vecExpr, len(n.Aggs))
		for i, a := range n.Aggs {
			if a.Star {
				// COUNT(*) counts rows: a constant 1 per row feeds the
				// same accumulator the scalar path feeds.
				argVes[i] = veLit{d: datum.NewInt(1)}
				continue
			}
			ve, ok := compileVecExpr(a.Arg, schema)
			if !ok {
				vok = false
				break
			}
			argVes[i] = ve
		}
	}
	useVec := vok && e.vecOn(len(in))
	markEngine(c, n, useVec)
	// Parallel partial aggregation, split at the only safe seam: workers
	// do the pure per-row work (group-key rendering and argument
	// evaluation) over disjoint chunks — columnar when the expressions
	// compile to kernels — and the coordinator folds rows into groups
	// sequentially in the original input order. Folding in input order
	// keeps float accumulation (SUM/AVG) and group first-appearance
	// order bit-identical to the sequential executor.
	evald := make([]aggEvalRow, len(in))
	err = runMorsels(e, "hashagg-eval", chunkBounds(len(in)),
		func(i int) (struct{}, error) {
			lo := i * morselRows
			rows := chunkOf(in, i)
			if useVec {
				w := getVecWork()
				ok := hashAggEvalVec(groupVes, argVes, rows, evald[lo:lo+len(rows)], &w.m)
				putVecWork(w)
				if ok {
					return struct{}{}, nil
				}
			}
			for j, r := range rows {
				gkey := make(datum.Row, len(groupFns))
				for k, f := range groupFns {
					v, ferr := f(r)
					if ferr != nil {
						return struct{}{}, ferr
					}
					gkey[k] = v
				}
				vals := make([]datum.Datum, len(n.Aggs))
				for k, a := range n.Aggs {
					if a.Star {
						vals[k] = datum.NewInt(1)
						continue
					}
					v, ferr := argFns[k](r)
					if ferr != nil {
						return struct{}{}, ferr
					}
					vals[k] = v
				}
				evald[lo+j] = aggEvalRow{gkey: rowKey(gkey), vals: vals}
			}
			return struct{}{}, nil
		},
		func(int, struct{}) error { return nil })
	if err != nil {
		return nil, err
	}
	type group struct {
		states []*aggState
	}
	groups := map[string]*group{}
	var order []string
	for _, er := range evald {
		g, ok := groups[er.gkey]
		if !ok {
			g = &group{states: make([]*aggState, len(n.Aggs))}
			for i := range g.states {
				g.states[i] = &aggState{}
			}
			groups[er.gkey] = g
			order = append(order, er.gkey)
		}
		for i := range n.Aggs {
			g.states[i].add(er.vals[i])
		}
	}
	// A global aggregate over zero rows still yields one row.
	if len(groups) == 0 && len(n.GroupBy) == 0 {
		row := make(datum.Row, len(n.Aggs))
		empty := &aggState{}
		for i, a := range n.Aggs {
			row[i] = empty.result(a.Func)
		}
		return []datum.Row{row}, nil
	}
	out := make([]datum.Row, 0, len(groups))
	for _, k := range order {
		g := groups[k]
		row := make(datum.Row, len(n.Aggs))
		for i, a := range n.Aggs {
			fn := a.Func
			if a.Star {
				fn = "COUNT"
			}
			row[i] = g.states[i].result(fn)
		}
		out = append(out, row)
	}
	return out, nil
}

func (e *run) runInsert(n *plan.InsertNode, c *Collector) (*ResultSet, error) {
	rows := n.Literals
	if n.Source != nil {
		src, err := e.exec(n.Source, c)
		if err != nil {
			return nil, err
		}
		rows = src
	}
	t := e.cat.Table(n.Table)
	if t == nil {
		return nil, fmt.Errorf("executor: unknown table %s", n.Table)
	}
	// Statement-level atomicity: a failure on any row (injected write
	// fault, cancellation) retracts every row this statement already
	// applied, so a failed INSERT inserts nothing. The WAL statement
	// batch follows the same boundary: it commits only after every row
	// applied, and a failed commit rolls the rows back — an
	// acknowledged statement is durable, a failed one is invisible.
	var applied []storage.RID
	e.mgr.BeginStmt(n.Table)
	rollback := func() {
		for i := len(applied) - 1; i >= 0; i-- {
			e.mgr.UndoInsert(n.Table, applied[i])
		}
		e.mgr.AbortStmt(n.Table)
	}
	for _, r := range rows {
		if len(r) != len(t.Columns) {
			rollback()
			return nil, fmt.Errorf("executor: INSERT arity %d != %d for %s", len(r), len(t.Columns), n.Table)
		}
		rid, _, err := e.mgr.Insert(n.Table, r.Clone())
		if err == nil {
			err = e.tick()
			if err != nil {
				applied = append(applied, rid)
			}
		}
		if err != nil {
			rollback()
			return nil, err
		}
		applied = append(applied, rid)
	}
	if err := e.mgr.CommitStmt(n.Table); err != nil {
		rollback()
		return nil, err
	}
	return &ResultSet{Affected: len(rows)}, nil
}

func (e *run) runUpdate(n *plan.UpdateNode) (*ResultSet, error) {
	t := e.cat.Table(n.Table)
	if t == nil {
		return nil, fmt.Errorf("executor: unknown table %s", n.Table)
	}
	h := e.mgr.Heap(n.Table)
	if h == nil {
		return nil, fmt.Errorf("executor: table %s not materialized", n.Table)
	}
	schema := plan.TableSchema(t, "")
	pred, err := compilePreds(n.Where, schema)
	if err != nil {
		return nil, err
	}
	setFns := make([]evalFunc, len(n.Set))
	setOrds := make([]int, len(n.Set))
	for i, a := range n.Set {
		ord := t.ColumnIndex(a.Column)
		if ord < 0 {
			return nil, fmt.Errorf("executor: unknown column %s", a.Column)
		}
		setOrds[i] = ord
		if setFns[i], err = compile(a.Value, schema); err != nil {
			return nil, err
		}
	}
	// Collect matches first: mutating while scanning would be unsound.
	type match struct {
		rid storage.RID
		row datum.Row
	}
	var matches []match
	var scanErr error
	h.Scan(func(rid storage.RID, r datum.Row) bool {
		ok, err := pred(r)
		if err != nil {
			scanErr = err
			return false
		}
		if ok {
			matches = append(matches, match{rid: rid, row: r})
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	type appliedUpdate struct {
		rid storage.RID
		old datum.Row
	}
	var applied []appliedUpdate
	e.mgr.BeginStmt(n.Table)
	rollback := func() {
		for i := len(applied) - 1; i >= 0; i-- {
			e.mgr.UndoUpdate(n.Table, applied[i].rid, applied[i].old)
		}
		e.mgr.AbortStmt(n.Table)
	}
	for _, mt := range matches {
		newRow := mt.row.Clone()
		for i, f := range setFns {
			v, err := f(mt.row)
			if err != nil {
				rollback()
				return nil, err
			}
			newRow[setOrds[i]] = v
		}
		if _, err := e.mgr.Update(n.Table, mt.rid, newRow); err != nil {
			rollback()
			return nil, err
		}
		applied = append(applied, appliedUpdate{rid: mt.rid, old: mt.row})
		if err := e.tick(); err != nil {
			rollback()
			return nil, err
		}
	}
	if err := e.mgr.CommitStmt(n.Table); err != nil {
		rollback()
		return nil, err
	}
	return &ResultSet{Affected: len(matches)}, nil
}

func (e *run) runDelete(n *plan.DeleteNode) (*ResultSet, error) {
	t := e.cat.Table(n.Table)
	if t == nil {
		return nil, fmt.Errorf("executor: unknown table %s", n.Table)
	}
	h := e.mgr.Heap(n.Table)
	if h == nil {
		return nil, fmt.Errorf("executor: table %s not materialized", n.Table)
	}
	pred, err := compilePreds(n.Where, plan.TableSchema(t, ""))
	if err != nil {
		return nil, err
	}
	type doomed struct {
		rid storage.RID
		row datum.Row
	}
	var targets []doomed
	var scanErr error
	h.Scan(func(rid storage.RID, r datum.Row) bool {
		ok, err := pred(r)
		if err != nil {
			scanErr = err
			return false
		}
		if ok {
			targets = append(targets, doomed{rid: rid, row: r})
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	var applied []doomed
	e.mgr.BeginStmt(n.Table)
	rollback := func() {
		for i := len(applied) - 1; i >= 0; i-- {
			e.mgr.UndoDelete(n.Table, applied[i].rid, applied[i].row)
		}
		e.mgr.AbortStmt(n.Table)
	}
	for _, d := range targets {
		if _, err := e.mgr.Delete(n.Table, d.rid); err != nil {
			rollback()
			return nil, err
		}
		applied = append(applied, d)
		if err := e.tick(); err != nil {
			rollback()
			return nil, err
		}
	}
	if err := e.mgr.CommitStmt(n.Table); err != nil {
		rollback()
		return nil, err
	}
	return &ResultSet{Affected: len(targets)}, nil
}

var _ = sql.Statement(nil)
