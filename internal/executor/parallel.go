package executor

import (
	"fmt"
	"sync"
	"sync/atomic"

	"onlinetuner/internal/datum"
	"onlinetuner/internal/obs"
)

// This file is the morsel-driven parallelism core. A morsel is a fixed-
// size slice of an operator's input — a heap RID range, a B+-tree leaf
// run, or a chunk of an already-materialized row slice — and morsel
// decomposition is always a property of the DATA, never of the worker
// count. That single rule carries the three guarantees the rest of the
// PR leans on:
//
//   - Byte-identical results at any worker setting. Workers evaluate
//     morsels in any order, but the coordinator consumes their outputs
//     strictly in morsel-index order, so the concatenated result equals
//     the sequential executor's output exactly.
//
//   - Deterministic fault injection. Per-morsel fault draws are keyed by
//     (scan ordinal, morsel index) via fault.HitKeyed, a pure function
//     of the seed — the same morsels fault under any interleaving.
//
//   - Deterministic first error. Workers may run ahead of an error, but
//     the coordinator reports the error of the lowest-indexed failing
//     morsel, which is what the sequential path would have hit first.
//     (Read-only subtrees make the run-ahead harmless.)

// morselRows is the number of input units (heap slots, index entries,
// or materialized rows) per morsel.
const morselRows = 4096

// morselKey builds the deterministic fault key for morsel i of the
// scan identified by the unkeyed fault ordinal ord (the per-statement
// scan identity, drawn in plan order on the coordinator).
func morselKey(ord int64, i int) uint64 {
	return uint64(ord)<<32 | uint64(uint32(i))
}

// chunkBounds cuts n input rows into morsel [lo, hi) ranges.
func chunkBounds(n int) int { return (n + morselRows - 1) / morselRows }

func chunkOf(rows []datum.Row, i int) []datum.Row {
	lo := i * morselRows
	hi := lo + morselRows
	if hi > len(rows) {
		hi = len(rows)
	}
	return rows[lo:hi]
}

// runStopped is runMorsels' sequential sibling for Stop-limited scans:
// morsels run strictly in order on the calling goroutine and the loop
// halts once stop rows have accumulated, truncating the final morsel's
// surplus. A stopped scan stays sequential on purpose — the pushdown
// exists to read almost nothing, and worker run-ahead would make the
// scanned-row actuals depend on the worker count. It returns the number
// of morsels actually produced so collectors can report page traffic
// proportionally.
func (e *run) runStopped(n int, stop int64, work func(i int) (*datum.Batch, error)) ([]datum.Row, int, error) {
	var out []datum.Row
	visited := 0
	for i := 0; i < n && int64(len(out)) < stop; i++ {
		if err := e.ctx.Err(); err != nil {
			return nil, visited, err
		}
		b, err := work(i)
		if err != nil {
			return nil, visited, err
		}
		visited++
		out = append(out, b.Rows()...)
	}
	if int64(len(out)) > stop {
		out = out[:stop]
	}
	return out, visited, nil
}

// runMorsels executes n independent morsels and consumes their results
// strictly in morsel order. work must be safe to call from multiple
// goroutines on distinct indices and must not mutate shared state;
// consume runs only on the calling goroutine, in index order.
//
// Scheduling: the coordinator walks indices 0..n-1. A morsel nobody has
// claimed yet it executes inline; a morsel claimed by an extra worker it
// waits for. Extra workers (slots from the executor's pool, acquired
// non-blocking — zero slots degrade to a plain sequential loop) claim
// morsels from a shared counter, gated by a token semaphore that bounds
// how many unconsumed results can be in flight. The context is polled
// once per morsel — the per-batch cancellation tick — so a cancelled
// statement stops within one morsel.
func runMorsels[T any](r *run, label string, n int, work func(i int) (T, error), consume func(i int, v T) error) error {
	if n == 0 {
		return nil
	}
	extra := 0
	if n > 1 {
		want := n - 1
		if w := r.pool.Workers() - 1; want > w {
			want = w
		}
		extra = r.pool.TryAcquire(want)
	}
	if extra == 0 {
		for i := 0; i < n; i++ {
			if err := r.ctx.Err(); err != nil {
				return err
			}
			v, err := work(i)
			if err != nil {
				return err
			}
			if err := consume(i, v); err != nil {
				return err
			}
		}
		return nil
	}
	defer r.pool.Release(extra)
	r.metricBusy(int64(extra))
	defer r.metricBusy(-int64(extra))
	r.metricMorsels(int64(n))

	tr := obs.FromContext(r.ctx)
	var span obs.SpanRef
	if tr != nil {
		span = tr.StartSpan("exec.parallel")
		span.SetAttr(fmt.Sprintf("%s morsels=%d extra_workers=%d", label, n, extra))
	}

	out := make([]T, n)
	errs := make([]error, n)
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}
	// Tokens bound worker run-ahead: each worker claim holds one token
	// until the coordinator consumes that morsel, so at most cap(tokens)
	// unconsumed worker results exist at once.
	tokens := make(chan struct{}, 2*extra+2)
	for i := 0; i < cap(tokens); i++ {
		tokens <- struct{}{}
	}
	stop := make(chan struct{})
	var claim atomic.Int64
	workerMorsels := make([]int64, extra)
	var wg sync.WaitGroup
	for w := 0; w < extra; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-tokens:
				case <-stop:
					return
				}
				i := int(claim.Add(1)) - 1
				if i >= n {
					// Refund the token consumed by this claim: a worker
					// retiring past the tail must not shrink the in-flight
					// bound for the workers still running. (Puts never
					// block: every put pairs with a prior take.)
					tokens <- struct{}{}
					return
				}
				if err := r.ctx.Err(); err != nil {
					errs[i] = err
					close(done[i])
					continue
				}
				v, err := work(i)
				out[i], errs[i] = v, err
				workerMorsels[w]++
				close(done[i])
			}
		}(w)
	}
	var retErr error
	for i := 0; i < n; i++ {
		if claim.CompareAndSwap(int64(i), int64(i+1)) {
			// Unclaimed: the coordinator is worker zero.
			if err := r.ctx.Err(); err != nil {
				retErr = err
				break
			}
			v, err := work(i)
			if err != nil {
				retErr = err
				break
			}
			if err := consume(i, v); err != nil {
				retErr = err
				break
			}
			continue
		}
		<-done[i]
		tokens <- struct{}{}
		if errs[i] != nil {
			retErr = errs[i]
			break
		}
		if err := consume(i, out[i]); err != nil {
			retErr = err
			break
		}
	}
	close(stop)
	wg.Wait()
	if tr != nil {
		// Per-worker attribution, emitted by the coordinator after the
		// workers have quiesced (the trace is single-goroutine).
		for w, m := range workerMorsels {
			ws := tr.StartSpan("exec.worker")
			ws.SetAttr(fmt.Sprintf("worker=%d", w+1))
			ws.SetRows(m)
			ws.End()
		}
		span.End()
	}
	return retErr
}
