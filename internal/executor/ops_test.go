package executor

import (
	"reflect"
	"testing"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/datum"
	"onlinetuner/internal/plan"
	"onlinetuner/internal/sql"
	"onlinetuner/internal/storage"
)

// valsTable builds a table name(id, v) holding the given v values
// (datum.Null allowed) and returns its scan node.
func valsTable(t *testing.T, cat *catalog.Catalog, mgr *storage.Manager, name string, vals []datum.Datum) *plan.SeqScan {
	t.Helper()
	tbl, err := catalog.NewTable(name, []catalog.Column{
		{Name: "id", Kind: datum.KInt}, {Name: "v", Kind: datum.KInt},
	}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	if err := mgr.CreateTable(name); err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if _, _, err := mgr.Insert(name, datum.Row{datum.NewInt(int64(i)), v}); err != nil {
			t.Fatal(err)
		}
	}
	scan := &plan.SeqScan{Table: name, Alias: name}
	scan.Out = plan.TableSchema(tbl, name)
	return scan
}

func ints(vs ...int64) []datum.Datum {
	out := make([]datum.Datum, len(vs))
	for i, v := range vs {
		out[i] = datum.NewInt(v)
	}
	return out
}

// TestTopNMatchesSortLimit is the operator's defining property: TopN is
// byte-identical to the stable Sort + Limit pair it replaces, across
// key directions, tie-heavy keys, NULL keys, and every N regime
// (empty, under, exactly, and over the input size).
func TestTopNMatchesSortLimit(t *testing.T) {
	cat, mgr, ex, _ := fixture(t, 200, false)
	// NULL sort keys mixed in.
	for i := 0; i < 7; i++ {
		if _, _, err := mgr.Insert("R", datum.Row{datum.NewInt(int64(1000 + i)), datum.Null, datum.NewInt(int64(i % 3))}); err != nil {
			t.Fatal(err)
		}
	}
	keysets := [][]plan.SortKey{
		{{Expr: &sql.ColumnRef{Column: "a"}}},
		{{Expr: &sql.ColumnRef{Column: "a"}, Desc: true}},
		{{Expr: &sql.ColumnRef{Column: "a"}}, {Expr: &sql.ColumnRef{Column: "b"}, Desc: true}},
		{{Expr: &sql.ColumnRef{Column: "b"}, Desc: true}, {Expr: &sql.ColumnRef{Column: "id"}}},
	}
	for ki, keys := range keysets {
		for _, n := range []int64{0, 1, 3, 10, 207, 500} {
			scan := &plan.SeqScan{Table: "R", Alias: "R"}
			scan.Out = rSchema(cat)
			s := &plan.Sort{Child: scan, Keys: keys}
			s.Out = scan.Out
			l := &plan.Limit{Child: s, N: n}
			l.Out = s.Out
			want, err := ex.exec(l, nil)
			if err != nil {
				t.Fatal(err)
			}
			tn := &plan.TopN{Child: scan, Keys: keys, N: n}
			tn.Out = scan.Out
			got, err := ex.exec(tn, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("keyset %d N=%d: topn %d rows, sort+limit %d", ki, n, len(got), len(want))
			}
			if len(got) > 0 && !reflect.DeepEqual(got, want) {
				t.Errorf("keyset %d N=%d: topn diverges from sort+limit", ki, n)
			}
		}
	}
}

// TestTopNVecPrunePath forces the vectorized engine over an input large
// enough to engage the TopK prefilter (single key, len >> 2N) and
// cross-checks the row engine: the prune is a superset filter, so both
// engines must produce the identical stable-sort prefix — including
// when the key is tie-heavy (a has only 10 distinct values).
func TestTopNVecPrunePath(t *testing.T) {
	cat, _, ex, _ := fixture(t, 12000, false)
	for _, desc := range []bool{false, true} {
		for _, col := range []string{"id", "a"} {
			keys := []plan.SortKey{{Expr: &sql.ColumnRef{Column: col}, Desc: desc}}
			run := func(mode EngineMode) []datum.Row {
				ex.SetEngineMode(mode)
				tn := &plan.TopN{Child: &plan.SeqScan{Table: "R", Alias: "R"}, Keys: keys, N: 7}
				tn.Child.(*plan.SeqScan).Out = rSchema(cat)
				tn.Out = rSchema(cat)
				rows, err := ex.exec(tn, nil)
				if err != nil {
					t.Fatal(err)
				}
				return rows
			}
			vecRows := run(EngineVector)
			rowRows := run(EngineRow)
			ex.SetEngineMode(EngineAuto)
			if !reflect.DeepEqual(vecRows, rowRows) {
				t.Errorf("col=%s desc=%v: vector and row TopN diverge", col, desc)
			}
			if len(vecRows) != 7 {
				t.Fatalf("col=%s desc=%v: got %d rows", col, desc, len(vecRows))
			}
		}
	}
}

// TestHashSemiJoinSemantics pins the SQL three-valued-logic contract of
// each semi-join flavor: IN/EXISTS (semi), NOT EXISTS (anti), and
// NOT IN (null-aware anti, where a build-side NULL poisons everything).
func TestHashSemiJoinSemantics(t *testing.T) {
	cases := []struct {
		name      string
		anti      bool
		nullAware bool
		left      []datum.Datum
		right     []datum.Datum
		want      []datum.Datum // expected left keys, probe order
	}{
		{"semi-basic", false, false,
			append(ints(1, 2, 4), datum.Null), ints(2, 3, 4, 4), ints(2, 4)},
		{"semi-null-build-ignored", false, false,
			ints(1, 2), append(ints(2), datum.Null), ints(2)},
		{"anti-not-exists", true, false,
			append(ints(1, 2), datum.Null), ints(2, 3), append(ints(1), datum.Null)},
		{"anti-not-in", true, true,
			append(ints(1, 2), datum.Null), ints(2, 3), ints(1)},
		{"anti-not-in-null-build", true, true,
			ints(1, 2), append(ints(2), datum.Null), nil},
		{"anti-not-in-empty-build", true, true,
			append(ints(1), datum.Null), nil, append(ints(1), datum.Null)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cat := catalog.New()
			mgr := storage.NewManager(cat)
			ex := New(cat, mgr)
			l := valsTable(t, cat, mgr, "L", tc.left)
			r := valsTable(t, cat, mgr, "B", tc.right)
			j := &plan.HashSemiJoin{
				Left: l, Right: r,
				LeftKeys:  []sql.Expr{&sql.ColumnRef{Table: "L", Column: "v"}},
				RightKeys: []sql.Expr{&sql.ColumnRef{Table: "B", Column: "v"}},
				Anti:      tc.anti, NullAware: tc.nullAware,
			}
			j.Out = l.Out
			rows, err := ex.exec(j, nil)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]datum.Datum, len(rows))
			for i, row := range rows {
				got[i] = row[1]
			}
			if len(got) != len(tc.want) {
				t.Fatalf("got %d rows %v, want %d %v", len(got), got, len(tc.want), tc.want)
			}
			for i := range got {
				if got[i].IsNull() != tc.want[i].IsNull() ||
					(!got[i].IsNull() && got[i].Compare(tc.want[i]) != 0) {
					t.Fatalf("row %d: got %v, want %v", i, got[i], tc.want[i])
				}
			}
		})
	}
}

// aggMinMax wraps a child in the MIN/MAX HashAgg the optimizer places
// above an IndexEndpoint (and above a plain scan, for the oracle).
func aggMinMax(child plan.Node, col string, wantMin, wantMax bool) *plan.HashAgg {
	agg := &plan.HashAgg{Child: child}
	if wantMin {
		agg.Aggs = append(agg.Aggs, plan.AggSpec{Func: "MIN", Arg: &sql.ColumnRef{Column: col}, Name: "mn"})
		agg.Out = append(agg.Out, plan.ColRef{Column: "mn"})
	}
	if wantMax {
		agg.Aggs = append(agg.Aggs, plan.AggSpec{Func: "MAX", Arg: &sql.ColumnRef{Column: col}, Name: "mx"})
		agg.Out = append(agg.Out, plan.ColRef{Column: "mx"})
	}
	return agg
}

// TestIndexEndpointOracle checks MIN/MAX answered from index endpoints
// against the scan-based aggregate, including NULL values in the key
// column (MIN must skip the leading NULL run; an all-NULL table folds
// to NULL) and an equality prefix restricting the group.
func TestIndexEndpointOracle(t *testing.T) {
	cat, mgr, ex, ix := fixture(t, 100, true)
	for i := 0; i < 5; i++ {
		if _, _, err := mgr.Insert("R", datum.Row{datum.NewInt(int64(2000 + i)), datum.Null, datum.NewInt(0)}); err != nil {
			t.Fatal(err)
		}
	}
	// Rebuild the index to include the NULL rows.
	if err := mgr.DropIndex(ix.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.BuildIndex(ix); err != nil {
		t.Fatal(err)
	}
	check := func(name string, eq []datum.Datum, col string, wantMin, wantMax bool) {
		t.Helper()
		ep := &plan.IndexEndpoint{Index: ix, Alias: "R", Col: col, EqVals: eq, WantMin: wantMin, WantMax: wantMax}
		ep.Out = rSchema(cat)
		got, err := ex.exec(aggMinMax(ep, col, wantMin, wantMax), nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		scan := &plan.SeqScan{Table: "R", Alias: "R"}
		scan.Out = rSchema(cat)
		var oracle plan.Node = scan
		if len(eq) > 0 {
			f := &plan.Filter{Child: scan, Preds: []sql.Expr{&sql.BinaryExpr{
				Op: "=", Left: &sql.ColumnRef{Column: "a"}, Right: &sql.Literal{Value: eq[0]},
			}}}
			f.Out = scan.Out
			oracle = f
		}
		want, err := ex.exec(aggMinMax(oracle, col, wantMin, wantMax), nil)
		if err != nil {
			t.Fatalf("%s oracle: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: endpoint %v, scan oracle %v", name, got, want)
		}
	}
	check("min-a", nil, "a", true, false)
	check("max-a", nil, "a", false, true)
	check("minmax-a", nil, "a", true, true)
	check("min-id-eq7", []datum.Datum{datum.NewInt(7)}, "id", true, false)
	check("max-id-eq7", []datum.Datum{datum.NewInt(7)}, "id", false, true)
	check("minmax-id-eq-absent", []datum.Datum{datum.NewInt(999)}, "id", true, true)

	// All-NULL key column: both endpoints must fold to NULL like a scan.
	cat2 := catalog.New()
	mgr2 := storage.NewManager(cat2)
	ex2 := New(cat2, mgr2)
	tbl, err := catalog.NewTable("N", []catalog.Column{
		{Name: "id", Kind: datum.KInt}, {Name: "a", Kind: datum.KInt},
	}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cat2.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	if err := mgr2.CreateTable("N"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, _, err := mgr2.Insert("N", datum.Row{datum.NewInt(int64(i)), datum.Null}); err != nil {
			t.Fatal(err)
		}
	}
	ix2 := &catalog.Index{Name: "Na", Table: "N", Columns: []string{"a", "id"}}
	if err := cat2.AddIndex(ix2); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr2.BuildIndex(ix2); err != nil {
		t.Fatal(err)
	}
	ep := &plan.IndexEndpoint{Index: ix2, Alias: "N", Col: "a", WantMin: true, WantMax: true}
	ep.Out = plan.TableSchema(tbl, "N")
	rows, err := ex2.exec(aggMinMax(ep, "a", true, true), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !rows[0][0].IsNull() || !rows[0][1].IsNull() {
		t.Errorf("all-NULL endpoint agg = %v, want single NULL,NULL row", rows)
	}
}

// TestIndexEndpointStaleIndex mirrors TestIndexSeekInactiveIndexFails:
// a suspended index must not serve endpoint reads.
func TestIndexEndpointStaleIndex(t *testing.T) {
	cat, mgr, ex, ix := fixture(t, 10, true)
	if err := mgr.SuspendIndex(ix.ID()); err != nil {
		t.Fatal(err)
	}
	ep := &plan.IndexEndpoint{Index: ix, Alias: "R", Col: "a", WantMin: true}
	ep.Out = rSchema(cat)
	if _, err := ex.exec(ep, nil); err == nil {
		t.Error("endpoint on suspended index should fail")
	}
}

// TestScanStopPushdown: a stop-limited scan returns exactly the first
// Stop rows of the unlimited scan, for both scan shapes, and the limit
// composes with residual predicates (Stop counts emitted rows, not
// visited ones).
func TestScanStopPushdown(t *testing.T) {
	cat, _, ex, ix := fixture(t, 9997, true)
	full := &plan.SeqScan{Table: "R", Alias: "R"}
	full.Out = rSchema(cat)
	all, err := ex.exec(full, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, stop := range []int64{1, 5, 4096, 5000, 20000} {
		s := &plan.SeqScan{Table: "R", Alias: "R", Stop: stop}
		s.Out = rSchema(cat)
		got, err := ex.exec(s, nil)
		if err != nil {
			t.Fatal(err)
		}
		wantN := int(stop)
		if wantN > len(all) {
			wantN = len(all)
		}
		if !reflect.DeepEqual(got, all[:wantN]) {
			t.Errorf("seqscan stop=%d diverges from full-scan prefix", stop)
		}
	}
	// With a predicate: stop applies to surviving rows.
	p := &plan.SeqScan{Table: "R", Alias: "R", Preds: []sql.Expr{expr(t, "a = 3")}, Stop: 4}
	p.Out = rSchema(cat)
	got, err := ex.exec(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("predicated stop rows = %d, want 4", len(got))
	}
	for _, r := range got {
		if r[1].Int() != 3 {
			t.Fatalf("predicate violated: %v", r)
		}
	}
	// IndexSeek with Stop.
	seek := &plan.IndexSeek{Index: ix, Alias: "R", EqVals: []datum.Datum{datum.NewInt(3)}, Stop: 2}
	seek.Out = plan.IndexSchema(ix, "R")
	got, err = ex.exec(seek, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("seek stop rows = %d, want 2", len(got))
	}
}
