package executor

import (
	"onlinetuner/internal/datum"
	"onlinetuner/internal/plan"
)

// hashSemiJoin filters the probe (left) stream against a build set of
// right-side keys, emitting each left row at most once and preserving
// probe order. Semantics follow plan.HashSemiJoin: semi (IN/EXISTS),
// anti (NOT EXISTS: a NULL probe key never matches, so the row passes),
// and null-aware anti (NOT IN: any NULL in the build set suppresses all
// output, and a NULL probe key passes only against an empty build set).
func (e *run) hashSemiJoin(n *plan.HashSemiJoin, c *Collector) ([]datum.Row, error) {
	left, err := e.exec(n.Left, c)
	if err != nil {
		return nil, err
	}
	right, err := e.exec(n.Right, c)
	if err != nil {
		return nil, err
	}
	lf := make([]evalFunc, len(n.LeftKeys))
	rf := make([]evalFunc, len(n.RightKeys))
	for i := range n.LeftKeys {
		if lf[i], err = compile(n.LeftKeys[i], n.Left.Schema()); err != nil {
			return nil, err
		}
		if rf[i], err = compile(n.RightKeys[i], n.Right.Schema()); err != nil {
			return nil, err
		}
	}
	lves, lok := compileVecExprs(n.LeftKeys, n.Left.Schema())
	rves, rok := compileVecExprs(n.RightKeys, n.Right.Schema())
	useVec := lok && rok && e.vecOn(len(left)+len(right))
	markEngine(c, n, useVec)
	// Build: a set, not a row table — build-side order and multiplicity
	// are irrelevant, which is what lets the inner subquery be planned
	// with any access path. Key rendering is chunk-parallel as in
	// hashJoin; set insertion is order-insensitive.
	rkeys := make([]joinKey, len(right))
	err = runMorsels(e, "semijoin-build", chunkBounds(len(right)),
		func(i int) (struct{}, error) {
			lo := i * morselRows
			rows := chunkOf(right, i)
			if useVec {
				w := getVecWork()
				ok := joinKeysVec(rves, rows, rkeys[lo:lo+len(rows)], &w.m)
				putVecWork(w)
				if ok {
					return struct{}{}, nil
				}
			}
			for j, r := range rows {
				k, null, kerr := keyOf(r, rf)
				if kerr != nil {
					return struct{}{}, kerr
				}
				rkeys[lo+j] = joinKey{k: k, null: null}
			}
			return struct{}{}, nil
		},
		func(int, struct{}) error { return nil })
	if err != nil {
		return nil, err
	}
	set := make(map[string]struct{}, len(right))
	sawNull := false
	for _, rk := range rkeys {
		if rk.null {
			sawNull = true
			continue
		}
		set[rk.k] = struct{}{}
	}
	if n.Anti && n.NullAware && sawNull {
		// x NOT IN (..., NULL, ...) is never TRUE for any x.
		return nil, nil
	}
	emptyBuild := len(set) == 0
	var out []datum.Row
	err = runMorsels(e, "semijoin-probe", chunkBounds(len(left)),
		func(i int) (*datum.Batch, error) {
			b := datum.NewBatch(0)
			rows := chunkOf(left, i)
			var pkeys []joinKey
			if useVec {
				pkeys = make([]joinKey, len(rows))
				w := getVecWork()
				ok := joinKeysVec(lves, rows, pkeys, &w.m)
				putVecWork(w)
				if !ok {
					pkeys = nil
				}
			}
			for j, l := range rows {
				var k string
				var null bool
				if pkeys != nil {
					k, null = pkeys[j].k, pkeys[j].null
				} else {
					var kerr error
					if k, null, kerr = keyOf(l, lf); kerr != nil {
						return nil, kerr
					}
				}
				match := false
				if !null {
					_, match = set[k]
				}
				emit := false
				switch {
				case !n.Anti:
					emit = match
				case n.NullAware && null:
					emit = emptyBuild
				default:
					emit = !match
				}
				if emit {
					b.Append(l)
				}
			}
			return b, nil
		},
		func(_ int, b *datum.Batch) error {
			out = append(out, b.Rows()...)
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}
