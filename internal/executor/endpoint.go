package executor

import (
	"fmt"

	"onlinetuner/internal/datum"
	"onlinetuner/internal/fault"
	"onlinetuner/internal/plan"
	"onlinetuner/internal/storage"
)

// indexEndpoint answers a MIN/MAX aggregate with at most two positioned
// reads of an index: the smallest non-NULL entry after the equality
// prefix (NULLs sort first, so MIN skips the leading NULL run) and/or
// the last entry of the prefix group (which holds the maximum value —
// all-NULL groups surface their NULL row and the aggregate above folds
// it to NULL, exactly as a scan-based aggregate would). Emitted rows are
// full heap rows, deduplicated by RID when both endpoints coincide.
func (e *run) indexEndpoint(n *plan.IndexEndpoint, c *Collector) ([]datum.Row, error) {
	pi := e.mgr.Index(n.Index.ID())
	if pi == nil || pi.State() != storage.StateActive {
		return nil, fmt.Errorf("executor: index %s: %w", n.Index.Name, ErrStaleIndex)
	}
	if err := e.faults.Hit(fault.PageRead); err != nil {
		return nil, fmt.Errorf("executor: endpoint seek on index %s: %w", n.Index.Name, err)
	}
	markEngine(c, n, false)
	h := e.mgr.Heap(n.Index.Table)
	eq := n.EqVals
	inGroup := func(key datum.Row) bool {
		if len(key) <= len(eq) {
			return false
		}
		for i, v := range eq {
			if key[i].Compare(v) != 0 {
				return false
			}
		}
		return true
	}
	var rids []storage.RID
	var scanned, keyBytes int64
	if n.WantMin {
		// Position past the prefix's NULL run: (eq..., NULL) inclusive is
		// the group's first entry, and the bounded iterator never leaves
		// the group.
		lo := append(append(datum.Row{}, eq...), datum.Null)
		var hi datum.Row
		if len(eq) > 0 {
			hi = eq
		}
		for it := pi.Tree().Seek(lo, true, hi, true); it.Valid(); it.Next() {
			ent := it.Entry()
			scanned++
			keyBytes += int64(ent.Key.Width())
			if !inGroup(ent.Key) {
				break
			}
			if ent.Key[len(eq)].IsNull() {
				continue
			}
			rids = append(rids, ent.RID)
			break
		}
	}
	if n.WantMax {
		if ent, ok := pi.Tree().LastLE(eq); ok {
			scanned++
			keyBytes += int64(ent.Key.Width())
			if inGroup(ent.Key) {
				dup := false
				for _, r := range rids {
					if r == ent.RID {
						dup = true
					}
				}
				if !dup {
					rids = append(rids, ent.RID)
				}
			}
		}
	}
	out := make([]datum.Row, 0, len(rids))
	for _, rid := range rids {
		row := h.Get(rid)
		if row == nil {
			return nil, fmt.Errorf("executor: dangling rid %d in index %s", rid, n.Index.Name)
		}
		out = append(out, row)
	}
	if c != nil {
		st := c.at(n)
		st.addScanned(scanned)
		st.addPages(storage.PagesFor(keyBytes) + int64(len(out)))
	}
	return out, nil
}
