package executor

import (
	"fmt"
	"testing"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/datum"
	"onlinetuner/internal/plan"
	"onlinetuner/internal/sql"
	"onlinetuner/internal/storage"
)

// fixture builds R(id,a,b) with rows (i, i%10, i%3) and an optional
// secondary index on (a, id).
func fixture(t testing.TB, rows int, withIndex bool) (*catalog.Catalog, *storage.Manager, *Executor, *catalog.Index) {
	t.Helper()
	cat := catalog.New()
	tbl, err := catalog.NewTable("R", []catalog.Column{
		{Name: "id", Kind: datum.KInt},
		{Name: "a", Kind: datum.KInt},
		{Name: "b", Kind: datum.KInt},
	}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	mgr := storage.NewManager(cat)
	if err := mgr.CreateTable("R"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, _, err := mgr.Insert("R", datum.Row{
			datum.NewInt(int64(i)), datum.NewInt(int64(i % 10)), datum.NewInt(int64(i % 3)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	var ix *catalog.Index
	if withIndex {
		ix = &catalog.Index{Name: "Ra", Table: "R", Columns: []string{"a", "id"}}
		if err := cat.AddIndex(ix); err != nil {
			t.Fatal(err)
		}
		if _, err := mgr.BuildIndex(ix); err != nil {
			t.Fatal(err)
		}
	}
	return cat, mgr, New(cat, mgr), ix
}

func expr(t testing.TB, s string) sql.Expr {
	t.Helper()
	stmt, err := sql.Parse("SELECT a FROM R WHERE " + s)
	if err != nil {
		t.Fatal(err)
	}
	return stmt.(*sql.Select).Where
}

func rSchema(cat *catalog.Catalog) []plan.ColRef {
	return plan.TableSchema(cat.Table("R"), "R")
}

func TestSeqScanWithPreds(t *testing.T) {
	cat, _, ex, _ := fixture(t, 100, false)
	n := &plan.SeqScan{Table: "R", Alias: "R", Preds: []sql.Expr{expr(t, "a = 3")}}
	n.Out = rSchema(cat)
	rows, err := ex.exec(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
}

func TestIndexSeekCoveringAndBounds(t *testing.T) {
	cat, _, ex, ix := fixture(t, 100, true)
	_ = cat
	eq := datum.NewInt(7)
	n := &plan.IndexSeek{Index: ix, Alias: "R", EqVals: []datum.Datum{eq}}
	n.Out = plan.IndexSchema(ix, "R")
	rows, err := ex.exec(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("seek a=7 rows = %d, want 10", len(rows))
	}
	for _, r := range rows {
		if r[0].Int() != 7 {
			t.Fatalf("wrong key %v", r)
		}
		if len(r) != 2 {
			t.Fatalf("covering row should have index arity: %v", r)
		}
	}
}

func TestIndexSeekFetch(t *testing.T) {
	cat, _, ex, ix := fixture(t, 100, true)
	eq := datum.NewInt(7)
	n := &plan.IndexSeek{Index: ix, Alias: "R", EqVals: []datum.Datum{eq}, Fetch: true}
	n.Out = rSchema(cat)
	rows, err := ex.exec(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 || len(rows[0]) != 3 {
		t.Fatalf("fetched rows = %d arity %d", len(rows), len(rows[0]))
	}
}

func TestIndexSeekRangeBounds(t *testing.T) {
	_, _, ex, ix := fixture(t, 100, true)
	lo, hi := datum.NewInt(3), datum.NewInt(5)
	n := &plan.IndexSeek{Index: ix, Alias: "R", Lo: &lo, Hi: &hi, LoInc: true, HiInc: false}
	n.Out = plan.IndexSchema(ix, "R")
	rows, err := ex.exec(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 { // a in {3,4}, 10 each
		t.Fatalf("range rows = %d, want 20", len(rows))
	}
}

func TestIndexSeekInactiveIndexFails(t *testing.T) {
	_, mgr, ex, ix := fixture(t, 10, true)
	if err := mgr.SuspendIndex(ix.ID()); err != nil {
		t.Fatal(err)
	}
	n := &plan.IndexSeek{Index: ix, Alias: "R", EqVals: []datum.Datum{datum.NewInt(1)}}
	n.Out = plan.IndexSchema(ix, "R")
	if _, err := ex.exec(n, nil); err == nil {
		t.Error("seek on suspended index should fail")
	}
}

func TestHashJoinNullKeysDropped(t *testing.T) {
	cat, mgr, ex, _ := fixture(t, 10, false)
	// Insert a row with NULL join key.
	if _, _, err := mgr.Insert("R", datum.Row{datum.NewInt(100), datum.Null, datum.NewInt(0)}); err != nil {
		t.Fatal(err)
	}
	left := &plan.SeqScan{Table: "R", Alias: "l"}
	left.Out = plan.TableSchema(cat.Table("R"), "l")
	right := &plan.SeqScan{Table: "R", Alias: "r"}
	right.Out = plan.TableSchema(cat.Table("R"), "r")
	j := &plan.HashJoin{
		Left: left, Right: right,
		LeftKeys:  []sql.Expr{&sql.ColumnRef{Table: "l", Column: "a"}},
		RightKeys: []sql.Expr{&sql.ColumnRef{Table: "r", Column: "a"}},
	}
	j.Out = append(append([]plan.ColRef(nil), left.Out...), right.Out...)
	rows, err := ex.exec(j, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 10 rows with distinct a values 0..9 → each joins itself once; the
	// NULL row matches nothing (SQL semantics).
	if len(rows) != 10 {
		t.Fatalf("join rows = %d, want 10", len(rows))
	}
}

func TestSortDescAndLimit(t *testing.T) {
	cat, _, ex, _ := fixture(t, 50, false)
	scan := &plan.SeqScan{Table: "R", Alias: "R"}
	scan.Out = rSchema(cat)
	s := &plan.Sort{Child: scan, Keys: []plan.SortKey{{Expr: &sql.ColumnRef{Column: "id"}, Desc: true}}}
	s.Out = scan.Out
	l := &plan.Limit{Child: s, N: 3}
	l.Out = s.Out
	rows, err := ex.exec(l, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0][0].Int() != 49 || rows[2][0].Int() != 47 {
		t.Fatalf("top-3 by id desc = %v", rows)
	}
}

func TestHashAggFunctions(t *testing.T) {
	cat, _, ex, _ := fixture(t, 30, false)
	scan := &plan.SeqScan{Table: "R", Alias: "R"}
	scan.Out = rSchema(cat)
	agg := &plan.HashAgg{
		Child:   scan,
		GroupBy: []sql.Expr{&sql.ColumnRef{Column: "b"}},
		Aggs: []plan.AggSpec{
			{Func: "FIRST", Arg: &sql.ColumnRef{Column: "b"}, Name: "b"},
			{Func: "COUNT", Star: true, Name: "n"},
			{Func: "SUM", Arg: &sql.ColumnRef{Column: "id"}, Name: "s"},
			{Func: "MIN", Arg: &sql.ColumnRef{Column: "id"}, Name: "mn"},
			{Func: "MAX", Arg: &sql.ColumnRef{Column: "id"}, Name: "mx"},
			{Func: "AVG", Arg: &sql.ColumnRef{Column: "id"}, Name: "av"},
		},
	}
	agg.Out = []plan.ColRef{{Column: "b"}, {Column: "n"}, {Column: "s"}, {Column: "mn"}, {Column: "mx"}, {Column: "av"}}
	rows, err := ex.exec(agg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("groups = %d", len(rows))
	}
	var totalCount, totalSum int64
	for _, r := range rows {
		totalCount += r[1].Int()
		totalSum += r[2].Int()
		if r[3].Int() > r[4].Int() {
			t.Errorf("min > max in %v", r)
		}
	}
	if totalCount != 30 || totalSum != 29*30/2 {
		t.Errorf("count=%d sum=%d", totalCount, totalSum)
	}
}

func TestAggNullHandling(t *testing.T) {
	cat, mgr, ex, _ := fixture(t, 0, false)
	// Only NULL values in column a.
	for i := 0; i < 5; i++ {
		if _, _, err := mgr.Insert("R", datum.Row{datum.NewInt(int64(i)), datum.Null, datum.NewInt(0)}); err != nil {
			t.Fatal(err)
		}
	}
	scan := &plan.SeqScan{Table: "R", Alias: "R"}
	scan.Out = rSchema(cat)
	agg := &plan.HashAgg{Child: scan, Aggs: []plan.AggSpec{
		{Func: "COUNT", Arg: &sql.ColumnRef{Column: "a"}, Name: "c"},
		{Func: "SUM", Arg: &sql.ColumnRef{Column: "a"}, Name: "s"},
	}}
	agg.Out = []plan.ColRef{{Column: "c"}, {Column: "s"}}
	rows, err := ex.exec(agg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].Int() != 0 {
		t.Errorf("COUNT(a) over NULLs = %v, want 0", rows[0][0])
	}
	if !rows[0][1].IsNull() {
		t.Errorf("SUM(a) over NULLs = %v, want NULL", rows[0][1])
	}
}

func TestExprCompileErrors(t *testing.T) {
	cat, _, _, _ := fixture(t, 1, false)
	schema := rSchema(cat)
	if _, err := compile(&sql.ColumnRef{Column: "nothere"}, schema); err == nil {
		t.Error("unknown column compiled")
	}
	if _, err := compile(&sql.FuncExpr{Name: "SUM", Arg: &sql.ColumnRef{Column: "a"}}, schema); err == nil {
		t.Error("aggregate outside agg context compiled")
	}
	dup := []plan.ColRef{{Table: "x", Column: "a"}, {Table: "y", Column: "a"}}
	if _, err := compile(&sql.ColumnRef{Column: "a"}, dup); err == nil {
		t.Error("ambiguous column compiled")
	}
	// Qualified reference resolves the ambiguity.
	if _, err := compile(&sql.ColumnRef{Table: "x", Column: "a"}, dup); err != nil {
		t.Errorf("qualified lookup failed: %v", err)
	}
}

func TestTruthiness(t *testing.T) {
	cases := []struct {
		d    datum.Datum
		want bool
	}{
		{datum.NewBool(true), true},
		{datum.NewBool(false), false},
		{datum.Null, false},
		{datum.NewInt(0), false},
		{datum.NewInt(5), true},
		{datum.NewFloat(0), false},
		{datum.NewString(""), false},
		{datum.NewString("x"), true},
	}
	for _, tc := range cases {
		if got := truthy(tc.d); got != tc.want {
			t.Errorf("truthy(%v) = %v", tc.d, got)
		}
	}
}

func TestComparisonWithNullIsFalse(t *testing.T) {
	cat, mgr, ex, _ := fixture(t, 0, false)
	if _, _, err := mgr.Insert("R", datum.Row{datum.NewInt(1), datum.Null, datum.NewInt(0)}); err != nil {
		t.Fatal(err)
	}
	n := &plan.SeqScan{Table: "R", Alias: "R", Preds: []sql.Expr{expr(t, "a = 0")}}
	n.Out = rSchema(cat)
	rows, err := ex.exec(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Error("NULL = 0 should not match")
	}
	// IS NULL does.
	n2 := &plan.SeqScan{Table: "R", Alias: "R", Preds: []sql.Expr{expr(t, "a IS NULL")}}
	n2.Out = rSchema(cat)
	rows, err = ex.exec(n2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Error("IS NULL should match")
	}
}

func TestRunDispatchesDML(t *testing.T) {
	cat, mgr, ex, _ := fixture(t, 10, true)
	_ = cat
	upd := &plan.UpdateNode{Table: "R",
		Set:   []sql.Assignment{{Column: "b", Value: &sql.Literal{Value: datum.NewInt(99)}}},
		Where: []sql.Expr{expr(t, "a = 3")}}
	rs, err := ex.Run(upd)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Affected != 1 {
		t.Fatalf("affected = %d", rs.Affected)
	}
	del := &plan.DeleteNode{Table: "R", Where: []sql.Expr{expr(t, "b = 99")}}
	rs, err = ex.Run(del)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Affected != 1 {
		t.Fatalf("deleted = %d", rs.Affected)
	}
	if mgr.Heap("R").Len() != 9 {
		t.Error("row not deleted")
	}
	ins := &plan.InsertNode{Table: "R", Literals: []datum.Row{
		{datum.NewInt(50), datum.NewInt(1), datum.NewInt(2)},
	}}
	rs, err = ex.Run(ins)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Affected != 1 || mgr.Heap("R").Len() != 10 {
		t.Error("insert failed")
	}
	// Arity mismatch rejected.
	bad := &plan.InsertNode{Table: "R", Literals: []datum.Row{{datum.NewInt(1)}}}
	if _, err := ex.Run(bad); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestDistinctOperator(t *testing.T) {
	cat, _, ex, _ := fixture(t, 30, false)
	scan := &plan.SeqScan{Table: "R", Alias: "R"}
	scan.Out = rSchema(cat)
	p := &plan.Project{Child: scan, Exprs: []sql.Expr{&sql.ColumnRef{Column: "b"}}, Names: []string{"b"}}
	p.Out = []plan.ColRef{{Column: "b"}}
	d := &plan.Distinct{Child: p}
	d.Out = p.Out
	rows, err := ex.exec(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("distinct = %d, want 3", len(rows))
	}
}

func TestCrossJoin(t *testing.T) {
	cat, _, ex, _ := fixture(t, 4, false)
	l := &plan.SeqScan{Table: "R", Alias: "l"}
	l.Out = plan.TableSchema(cat.Table("R"), "l")
	r := &plan.SeqScan{Table: "R", Alias: "r"}
	r.Out = plan.TableSchema(cat.Table("R"), "r")
	cj := &plan.CrossJoin{Left: l, Right: r}
	cj.Out = append(append([]plan.ColRef(nil), l.Out...), r.Out...)
	rows, err := ex.exec(cj, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("cross join = %d, want 16", len(rows))
	}
}

func BenchmarkSeqScan10k(b *testing.B) {
	cat, _, ex, _ := fixture(b, 10000, false)
	n := &plan.SeqScan{Table: "R", Alias: "R", Preds: []sql.Expr{expr(b, "a = 3")}}
	n.Out = rSchema(cat)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ex.exec(n, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexSeek10k(b *testing.B) {
	_, _, ex, ix := fixture(b, 10000, true)
	n := &plan.IndexSeek{Index: ix, Alias: "R", EqVals: []datum.Datum{datum.NewInt(3)}}
	n.Out = plan.IndexSchema(ix, "R")
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ex.exec(n, nil); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = fmt.Sprintf
