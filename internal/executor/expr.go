// Package executor evaluates physical plans against the storage engine.
// It is a materializing executor: each operator produces its full result
// set. That is sufficient for the workload scales the experiments run
// at, and keeps the operators easy to verify.
package executor

import (
	"fmt"
	"strings"

	"onlinetuner/internal/datum"
	"onlinetuner/internal/plan"
	"onlinetuner/internal/sql"
	"onlinetuner/internal/vec"
)

// evalFunc evaluates a compiled expression over an input row.
type evalFunc func(datum.Row) (datum.Datum, error)

// compile binds an expression against a schema, resolving column
// references to row slots.
func compile(e sql.Expr, schema []plan.ColRef) (evalFunc, error) {
	switch x := e.(type) {
	case *sql.Literal:
		v := x.Value
		return func(datum.Row) (datum.Datum, error) { return v, nil }, nil

	case *sql.ColumnRef:
		slot, err := lookup(schema, x.Table, x.Column)
		if err != nil {
			return nil, err
		}
		return func(r datum.Row) (datum.Datum, error) {
			if slot >= len(r) {
				return datum.Null, fmt.Errorf("executor: row too short for slot %d", slot)
			}
			return r[slot], nil
		}, nil

	case *sql.BinaryExpr:
		left, err := compile(x.Left, schema)
		if err != nil {
			return nil, err
		}
		right, err := compile(x.Right, schema)
		if err != nil {
			return nil, err
		}
		op := x.Op
		switch op {
		case "AND", "OR":
			isAnd := op == "AND"
			return func(r datum.Row) (datum.Datum, error) {
				l, err := left(r)
				if err != nil {
					return datum.Null, err
				}
				lb := truthy(l)
				if isAnd && !lb {
					return datum.NewBool(false), nil
				}
				if !isAnd && lb {
					return datum.NewBool(true), nil
				}
				rv, err := right(r)
				if err != nil {
					return datum.Null, err
				}
				return datum.NewBool(truthy(rv)), nil
			}, nil
		case "=", "<>", "<", "<=", ">", ">=":
			return func(r datum.Row) (datum.Datum, error) {
				l, err := left(r)
				if err != nil {
					return datum.Null, err
				}
				rv, err := right(r)
				if err != nil {
					return datum.Null, err
				}
				if l.IsNull() || rv.IsNull() {
					return datum.NewBool(false), nil // SQL UNKNOWN ⇒ filtered out
				}
				c := l.Compare(rv)
				var b bool
				switch op {
				case "=":
					b = c == 0
				case "<>":
					b = c != 0
				case "<":
					b = c < 0
				case "<=":
					b = c <= 0
				case ">":
					b = c > 0
				case ">=":
					b = c >= 0
				}
				return datum.NewBool(b), nil
			}, nil
		case "+", "-", "*", "/":
			return func(r datum.Row) (datum.Datum, error) {
				l, err := left(r)
				if err != nil {
					return datum.Null, err
				}
				rv, err := right(r)
				if err != nil {
					return datum.Null, err
				}
				switch op {
				case "+":
					return l.Add(rv)
				case "-":
					return l.Sub(rv)
				case "*":
					return l.Mul(rv)
				default:
					return l.Div(rv)
				}
			}, nil
		}
		return nil, fmt.Errorf("executor: unsupported operator %q", op)

	case *sql.NotExpr:
		inner, err := compile(x.Inner, schema)
		if err != nil {
			return nil, err
		}
		return func(r datum.Row) (datum.Datum, error) {
			v, err := inner(r)
			if err != nil {
				return datum.Null, err
			}
			return datum.NewBool(!truthy(v)), nil
		}, nil

	case *sql.IsNullExpr:
		inner, err := compile(x.Inner, schema)
		if err != nil {
			return nil, err
		}
		not := x.Not
		return func(r datum.Row) (datum.Datum, error) {
			v, err := inner(r)
			if err != nil {
				return datum.Null, err
			}
			return datum.NewBool(v.IsNull() != not), nil
		}, nil

	case *sql.LikeExpr:
		inner, err := compile(x.Expr, schema)
		if err != nil {
			return nil, err
		}
		m := vec.NewLikeMatcher(x.Pattern)
		not := x.Not
		return func(r datum.Row) (datum.Datum, error) {
			v, err := inner(r)
			if err != nil {
				return datum.Null, err
			}
			// NULL or non-string scrutinee is UNKNOWN under both LIKE and
			// NOT LIKE — the row is filtered out either way.
			if v.Kind() != datum.KString {
				return datum.NewBool(false), nil
			}
			return datum.NewBool(m.Match(v.Str()) != not), nil
		}, nil

	case *sql.FuncExpr:
		return nil, fmt.Errorf("executor: aggregate %s outside aggregation context", x.Name)
	}
	return nil, fmt.Errorf("executor: unsupported expression %T", e)
}

// lookup finds the slot of a column reference in a schema.
func lookup(schema []plan.ColRef, table, column string) (int, error) {
	found := -1
	for i, c := range schema {
		if c.Matches(table, column) {
			if found >= 0 {
				// Prefer an exact qualified match; ambiguity otherwise.
				return 0, fmt.Errorf("executor: ambiguous column %s.%s", table, column)
			}
			found = i
		}
	}
	if found < 0 {
		return 0, fmt.Errorf("executor: column %s not in schema %v", refString(table, column), schema)
	}
	return found, nil
}

func refString(table, column string) string {
	if table != "" {
		return table + "." + column
	}
	return column
}

// truthy converts a datum to a boolean filter decision (NULL ⇒ false).
func truthy(d datum.Datum) bool {
	switch d.Kind() {
	case datum.KBool:
		return d.Bool()
	case datum.KNull:
		return false
	case datum.KInt, datum.KDate:
		return d.Int() != 0
	case datum.KFloat:
		return d.Float() != 0
	case datum.KString:
		return d.Str() != ""
	}
	return false
}

// compilePreds compiles a conjunction of predicates into one filter.
func compilePreds(preds []sql.Expr, schema []plan.ColRef) (func(datum.Row) (bool, error), error) {
	fns := make([]evalFunc, len(preds))
	for i, p := range preds {
		f, err := compile(p, schema)
		if err != nil {
			return nil, err
		}
		fns[i] = f
	}
	return func(r datum.Row) (bool, error) {
		for _, f := range fns {
			v, err := f(r)
			if err != nil {
				return false, err
			}
			if !truthy(v) {
				return false, nil
			}
		}
		return true, nil
	}, nil
}

// schemaColumns renders output column names.
func schemaColumns(schema []plan.ColRef) []string {
	out := make([]string, len(schema))
	for i, c := range schema {
		out[i] = c.Column
		if out[i] == "" {
			out[i] = strings.ToLower(c.String())
		}
	}
	return out
}
