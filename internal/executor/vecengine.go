package executor

import (
	"fmt"
	"sync"

	"onlinetuner/internal/datum"
	"onlinetuner/internal/plan"
	"onlinetuner/internal/sql"
	"onlinetuner/internal/vec"
)

// EngineMode selects how operators evaluate predicates and expressions.
//
// The selection is adaptive per operator shape, the way coregex picks a
// regex engine per pattern: EngineAuto uses the vectorized columnar
// path for scans, filters, aggregate/join key evaluation and
// projections whenever every expression compiles to predicate kernels
// and the input is large enough to amortize the column gather;
// point-lookup seeks (IndexSeek) and order-sensitive folds (float
// SUM/AVG accumulation, DISTINCT dedup, sort merges) always stay
// sequential row-at-a-time on the coordinator, which is what keeps
// results byte-identical to the row engine at every worker count.
type EngineMode uint8

// The engine modes.
const (
	// EngineAuto picks per operator: vectorized when compilable and the
	// input has at least vecMinRows units, row otherwise.
	EngineAuto EngineMode = iota
	// EngineRow forces the scalar row-at-a-time paths everywhere.
	EngineRow
	// EngineVector forces the vectorized path whenever the expressions
	// compile to kernels (regardless of input size), row otherwise.
	EngineVector
)

// ParseEngineMode parses "auto" | "row" | "vector".
func ParseEngineMode(s string) (EngineMode, error) {
	switch s {
	case "", "auto":
		return EngineAuto, nil
	case "row":
		return EngineRow, nil
	case "vector":
		return EngineVector, nil
	}
	return EngineAuto, fmt.Errorf("executor: unknown engine mode %q (want auto|row|vector)", s)
}

// String renders the mode.
func (m EngineMode) String() string {
	switch m {
	case EngineRow:
		return "row"
	case EngineVector:
		return "vector"
	}
	return "auto"
}

// vecMinRows is the EngineAuto threshold: below this many input units
// the column gather costs more than it saves, so auto mode keeps the
// row path. The decision depends only on input size (which is
// deterministic at every worker count), never on scheduling.
const vecMinRows = 256

// vecOn decides whether an operator with n input units takes the
// vectorized path, given that its expressions compiled to kernels.
func (e *run) vecOn(n int) bool {
	switch e.mode {
	case EngineRow:
		return false
	case EngineVector:
		return true
	}
	return n >= vecMinRows
}

// ---------------------------------------------------------------------
// Vectorized predicate filters
// ---------------------------------------------------------------------

// vecPredKind enumerates the predicate kernel shapes.
type vecPredKind uint8

const (
	vpCmp     vecPredKind = iota // col op literal
	vpBetween                    // lo <= col <= hi (fused conjunct pair)
	vpIn                         // col IN (literals) (fused OR of equalities)
	vpLike                       // col [NOT] LIKE pattern
	vpIsNull                     // col IS [NOT] NULL
)

// vecPred is one compiled predicate kernel application.
type vecPred struct {
	kind vecPredKind
	slot int
	op   vec.CmpOp
	lit  datum.Datum
	lo   datum.Datum
	hi   datum.Datum
	set  []datum.Datum
	like *vec.LikeMatcher
	not  bool
}

// vecFilter is a conjunction of predicate kernels. It exists only when
// EVERY conjunct compiled — predicate kernels cannot error, so a
// partially-vectorized conjunction could reorder evaluation errors
// relative to the scalar engine; all-or-nothing compilation avoids that
// divergence entirely.
type vecFilter struct {
	preds []vecPred
}

// compileVecFilter compiles a conjunction of predicates to kernels.
// ok is false when any conjunct has a shape the kernels do not cover
// (the operator then uses the scalar path for the whole conjunction).
func compileVecFilter(preds []sql.Expr, schema []plan.ColRef) (*vecFilter, bool) {
	f := &vecFilter{}
	for _, p := range preds {
		if !f.add(p, schema) {
			return nil, false
		}
	}
	f.fuseBetween()
	return f, true
}

// add compiles one conjunct (splitting nested ANDs) into f.preds.
func (f *vecFilter) add(e sql.Expr, schema []plan.ColRef) bool {
	switch x := e.(type) {
	case *sql.BinaryExpr:
		switch x.Op {
		case "AND":
			return f.add(x.Left, schema) && f.add(x.Right, schema)
		case "OR":
			slot, set, ok := inSetOf(x, schema)
			if !ok {
				return false
			}
			f.preds = append(f.preds, vecPred{kind: vpIn, slot: slot, set: set})
			return true
		case "=", "<>", "<", "<=", ">", ">=":
			op, _ := vec.CmpOpFromString(x.Op)
			if slot, lit, ok := colLit(x.Left, x.Right, schema); ok {
				f.preds = append(f.preds, vecPred{kind: vpCmp, slot: slot, op: op, lit: lit})
				return true
			}
			if slot, lit, ok := colLit(x.Right, x.Left, schema); ok {
				// literal op col: flip to col flipped(op) literal.
				f.preds = append(f.preds, vecPred{kind: vpCmp, slot: slot, op: flipCmp(op), lit: lit})
				return true
			}
			return false
		}
		return false
	case *sql.LikeExpr:
		cr, ok := x.Expr.(*sql.ColumnRef)
		if !ok {
			return false
		}
		slot, err := lookup(schema, cr.Table, cr.Column)
		if err != nil {
			return false
		}
		f.preds = append(f.preds, vecPred{kind: vpLike, slot: slot, like: vec.NewLikeMatcher(x.Pattern), not: x.Not})
		return true
	case *sql.IsNullExpr:
		cr, ok := x.Inner.(*sql.ColumnRef)
		if !ok {
			return false
		}
		slot, err := lookup(schema, cr.Table, cr.Column)
		if err != nil {
			return false
		}
		f.preds = append(f.preds, vecPred{kind: vpIsNull, slot: slot, not: x.Not})
		return true
	}
	return false
}

// colLit matches the (ColumnRef, Literal) operand shape.
func colLit(l, r sql.Expr, schema []plan.ColRef) (int, datum.Datum, bool) {
	cr, ok := l.(*sql.ColumnRef)
	if !ok {
		return 0, datum.Null, false
	}
	lit, ok := r.(*sql.Literal)
	if !ok {
		return 0, datum.Null, false
	}
	slot, err := lookup(schema, cr.Table, cr.Column)
	if err != nil {
		return 0, datum.Null, false
	}
	return slot, lit.Value, true
}

// flipCmp mirrors an operator across swapped operands (5 < col ≡ col > 5).
func flipCmp(op vec.CmpOp) vec.CmpOp {
	switch op {
	case vec.LT:
		return vec.GT
	case vec.LE:
		return vec.GE
	case vec.GT:
		return vec.LT
	case vec.GE:
		return vec.LE
	}
	return op // EQ, NE are symmetric
}

// inSetOf matches an OR-tree of equalities on one column — the shape IN
// lists desugar into — and returns the column slot and member set.
func inSetOf(e sql.Expr, schema []plan.ColRef) (int, []datum.Datum, bool) {
	var slot = -1
	var set []datum.Datum
	var walk func(sql.Expr) bool
	walk = func(e sql.Expr) bool {
		be, ok := e.(*sql.BinaryExpr)
		if !ok {
			return false
		}
		switch be.Op {
		case "OR":
			return walk(be.Left) && walk(be.Right)
		case "=":
			s, lit, ok := colLit(be.Left, be.Right, schema)
			if !ok {
				s, lit, ok = colLit(be.Right, be.Left, schema)
			}
			if !ok || (slot >= 0 && s != slot) {
				return false
			}
			slot = s
			set = append(set, lit)
			return true
		}
		return false
	}
	if !walk(e) || slot < 0 {
		return -1, nil, false
	}
	return slot, set, true
}

// fuseBetween merges adjacent (col >= lo, col <= hi) kernel pairs — the
// two conjuncts BETWEEN desugars into — into one fused range kernel.
// The fusion never changes the surviving set (conjunction is order-
// independent), only the number of passes over the column.
func (f *vecFilter) fuseBetween() {
	out := f.preds[:0]
	for i := 0; i < len(f.preds); i++ {
		p := f.preds[i]
		if i+1 < len(f.preds) {
			q := f.preds[i+1]
			if p.kind == vpCmp && q.kind == vpCmp && p.slot == q.slot && p.op == vec.GE && q.op == vec.LE {
				out = append(out, vecPred{kind: vpBetween, slot: p.slot, lo: p.lit, hi: q.lit})
				i++
				continue
			}
		}
		out = append(out, p)
	}
	f.preds = out
}

// vecApply runs the filter over one morsel of rows and returns the
// selection of surviving row indices. Each conjunct gathers only its
// own column, restricted to the rows still selected (gather-on-demand:
// a selective first conjunct shrinks every later gather).
//
// The returned selection aliases scratch storage owned by s; callers
// consume it before the next vecApply on the same scratch.
func (f *vecFilter) vecApply(s *vecScratch, rows []datum.Row) vec.Sel {
	sel := s.selAll(len(rows))
	for i := range f.preds {
		if len(sel) == 0 {
			return sel
		}
		p := &f.preds[i]
		if p.kind == vpLike || p.kind == vpIsNull {
			// Row-direct: these predicates read one field per selected row
			// and gain nothing from a columnar gather (LIKE runs the same
			// matcher either way), so skipping the gather is pure savings.
			// Semantics match the MatchLike/IsNullSel kernels: NULL or a
			// non-string scrutinee is UNKNOWN under both LIKE polarities.
			next := s.selB[:0]
			for _, k := range sel {
				d := rows[k][p.slot]
				var keep bool
				if p.kind == vpLike {
					keep = d.Kind() == datum.KString && p.like.Match(d.Str()) != p.not
				} else {
					keep = d.IsNull() != p.not
				}
				if keep {
					next = append(next, k)
				}
			}
			s.selB = sel
			sel = next
			continue
		}
		s.col.Gather(rows, p.slot, sel)
		pos := s.pos[:0]
		switch p.kind {
		case vpCmp:
			pos = vec.CmpConst(&s.col, p.op, p.lit, pos)
		case vpBetween:
			pos = vec.BetweenConst(&s.col, p.lo, p.hi, pos)
		case vpIn:
			pos = vec.InConst(&s.col, p.set, pos)
		}
		s.pos = pos[:0]
		// Remap kernel positions (relative to the gathered column) back
		// to row indices through the current selection.
		next := s.selB[:0]
		for _, k := range pos {
			next = append(next, sel[k])
		}
		s.selB = sel // recycle the old selection's storage
		sel = next
	}
	return sel
}

// vecScratch is the working state of the vectorized filter: one gathered
// column and the selection ping-pong buffers.
type vecScratch struct {
	col  vec.Column
	pos  vec.Sel
	selA vec.Sel
	selB vec.Sel
}

// vecWork bundles the scratch state a vectorized morsel needs: the
// filter scratch, the expression-evaluation morsel (with its column
// pool), and a reusable row buffer for columnar scans. Works are pooled:
// a fresh scratch per morsel makes the whole engine allocation-bound —
// column gathers churn enough garbage that GC costs more than the
// kernels save, which is exactly backwards for a performance feature.
type vecWork struct {
	s    vecScratch
	m    vecMorsel
	rows []datum.Row
}

var vecWorkPool = sync.Pool{New: func() any { return new(vecWork) }}

// getVecWork borrows a scratch bundle from the pool. Results computed
// with it (selections, columns) alias pooled storage and must be
// consumed before putVecWork; datums and strings copied out of columns
// are safe to retain (they share no column-owned buffers).
func getVecWork() *vecWork { return vecWorkPool.Get().(*vecWork) }

func putVecWork(w *vecWork) { vecWorkPool.Put(w) }

// selAll returns the identity selection 0..n-1.
func (s *vecScratch) selAll(n int) vec.Sel {
	sel := s.selA[:0]
	for i := 0; i < n; i++ {
		sel = append(sel, int32(i))
	}
	s.selA = sel
	return sel
}

// ---------------------------------------------------------------------
// Vectorized expression evaluation (projection, join/agg keys)
// ---------------------------------------------------------------------

// vecExpr is a compiled column-at-a-time expression. eval returns a
// column of results over the morsel's selected rows; vec.ErrFallback
// means this morsel needs per-row scalar evaluation (mixed kinds or a
// type error the scalar engine must raise in row order).
type vecExpr interface {
	eval(m *vecMorsel) (*vec.Column, error)
}

// vecMorsel is the shared evaluation state for one morsel: the rows, an
// optional selection, a per-slot gather cache so several expressions
// over the same column gather it once, and a pool of result columns
// reused across morsels (Column operations reset but keep capacity, so
// a recycled morsel evaluates allocation-free once warm).
type vecMorsel struct {
	rows []datum.Row
	sel  vec.Sel // nil = all rows
	cols map[int]*vec.Column
	pool []*vec.Column
	used int
}

// reset points the morsel at a new row chunk, recycling the column pool
// and the gather cache's buckets.
func (m *vecMorsel) reset(rows []datum.Row, sel vec.Sel) {
	m.rows, m.sel = rows, sel
	m.used = 0
	for k := range m.cols {
		delete(m.cols, k)
	}
}

// newCol hands out a pooled column for this morsel's next result.
func (m *vecMorsel) newCol() *vec.Column {
	if m.used == len(m.pool) {
		m.pool = append(m.pool, &vec.Column{})
	}
	c := m.pool[m.used]
	m.used++
	return c
}

func (m *vecMorsel) n() int {
	if m.sel != nil {
		return len(m.sel)
	}
	return len(m.rows)
}

func (m *vecMorsel) colAt(slot int) *vec.Column {
	if c, ok := m.cols[slot]; ok {
		return c
	}
	c := m.newCol()
	c.Gather(m.rows, slot, m.sel)
	if m.cols == nil {
		m.cols = make(map[int]*vec.Column, 4)
	}
	m.cols[slot] = c
	return c
}

type veCol struct{ slot int }

func (v veCol) eval(m *vecMorsel) (*vec.Column, error) { return m.colAt(v.slot), nil }

type veLit struct {
	d datum.Datum
}

func (v veLit) eval(m *vecMorsel) (*vec.Column, error) {
	c := m.newCol()
	c.Broadcast(v.d, m.n())
	return c, nil
}

type veArith struct {
	op   byte
	l, r vecExpr
}

func (v veArith) eval(m *vecMorsel) (*vec.Column, error) {
	l, err := v.l.eval(m)
	if err != nil {
		return nil, err
	}
	r, err := v.r.eval(m)
	if err != nil {
		return nil, err
	}
	out := m.newCol()
	if err := vec.Arith(v.op, l, r, out); err != nil {
		return nil, err
	}
	return out, nil
}

// compileVecExpr compiles an expression to its column form. Division is
// never vectorized (its by-zero error must surface in scalar row
// order); comparisons and boolean operators are filter shapes, not
// projection shapes, and fall back too.
func compileVecExpr(e sql.Expr, schema []plan.ColRef) (vecExpr, bool) {
	switch x := e.(type) {
	case *sql.ColumnRef:
		slot, err := lookup(schema, x.Table, x.Column)
		if err != nil {
			return nil, false
		}
		return veCol{slot: slot}, true
	case *sql.Literal:
		return veLit{d: x.Value}, true
	case *sql.BinaryExpr:
		switch x.Op {
		case "+", "-", "*":
			l, ok := compileVecExpr(x.Left, schema)
			if !ok {
				return nil, false
			}
			r, ok := compileVecExpr(x.Right, schema)
			if !ok {
				return nil, false
			}
			return veArith{op: x.Op[0], l: l, r: r}, true
		}
	}
	return nil, false
}

// compileVecExprs compiles a list all-or-nothing.
func compileVecExprs(exprs []sql.Expr, schema []plan.ColRef) ([]vecExpr, bool) {
	out := make([]vecExpr, len(exprs))
	for i, e := range exprs {
		ve, ok := compileVecExpr(e, schema)
		if !ok {
			return nil, false
		}
		out[i] = ve
	}
	return out, true
}

// evalVecCols evaluates a set of expressions column-at-a-time over one
// morsel. ok=false means a kernel requested scalar fallback for this
// morsel (mixed kinds, non-numeric arithmetic); the caller re-evaluates
// the morsel with its scalar functions, which reproduces the scalar
// engine's values — or its errors, in its row order.
func evalVecCols(ves []vecExpr, m *vecMorsel) ([]*vec.Column, bool) {
	cols := make([]*vec.Column, len(ves))
	for i, ve := range ves {
		c, err := ve.eval(m)
		if err != nil {
			return nil, false
		}
		cols[i] = c
	}
	return cols, true
}

// projectVec evaluates projection expressions columnar and scatters the
// results into the batch row-wise. It writes nothing on fallback, so
// the caller's scalar retry starts from an empty batch.
func projectVec(ves []vecExpr, rows []datum.Row, b *datum.Batch, m *vecMorsel) bool {
	m.reset(rows, nil)
	cols, ok := evalVecCols(ves, m)
	if !ok {
		return false
	}
	for j := range rows {
		row := b.Alloc(len(cols))
		for k, c := range cols {
			row[k] = c.DatumAt(j)
		}
	}
	return true
}

// aggEvalRow is one input row after the aggregate eval stage: rendered
// group key plus evaluated aggregate arguments. The coordinator folds
// these into groups sequentially in input order.
type aggEvalRow struct {
	gkey string
	vals []datum.Datum
}

// hashAggEvalVec runs the aggregate eval stage columnar over one
// morsel: group keys render through datum.AppendKey (the exact bytes
// rowKey produces, so vectorized and scalar runs group identically) and
// aggregate arguments come from gathered columns.
func hashAggEvalVec(groupVes, argVes []vecExpr, rows []datum.Row, out []aggEvalRow, m *vecMorsel) bool {
	m.reset(rows, nil)
	gcols, ok := evalVecCols(groupVes, m)
	if !ok {
		return false
	}
	acols, ok := evalVecCols(argVes, m)
	if !ok {
		return false
	}
	// One slab for the whole morsel's argument datums instead of one
	// allocation per row; the carved slices escape into out, the slab
	// does not get reused.
	slab := make([]datum.Datum, len(rows)*len(acols))
	var buf []byte
	for j := range rows {
		buf = buf[:0]
		for _, c := range gcols {
			buf = c.DatumAt(j).AppendKey(buf)
			buf = append(buf, '\x00')
		}
		vals := slab[j*len(acols) : (j+1)*len(acols) : (j+1)*len(acols)]
		for k, c := range acols {
			vals[k] = c.DatumAt(j)
		}
		out[j] = aggEvalRow{gkey: string(buf), vals: vals}
	}
	return true
}

// joinKey is one row's rendered hash-join key; null marks a NULL key
// component (such rows never match).
type joinKey struct {
	k    string
	null bool
}

// joinKeysVec renders hash-join keys columnar over one morsel, byte-
// identical to the scalar keyOf path (AppendKey reproduces rowKey's
// bytes; NULL components short-circuit to a non-matching key).
func joinKeysVec(ves []vecExpr, rows []datum.Row, out []joinKey, m *vecMorsel) bool {
	m.reset(rows, nil)
	cols, ok := evalVecCols(ves, m)
	if !ok {
		return false
	}
	var buf []byte
	for j := range rows {
		buf = buf[:0]
		null := false
		for _, c := range cols {
			d := c.DatumAt(j)
			if d.IsNull() {
				null = true
				break
			}
			buf = d.AppendKey(buf)
			buf = append(buf, '\x00')
		}
		out[j] = joinKey{k: string(buf), null: null}
	}
	return true
}
