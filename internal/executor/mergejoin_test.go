package executor

import (
	"sort"
	"testing"

	"onlinetuner/internal/datum"
	"onlinetuner/internal/plan"
	"onlinetuner/internal/sql"
)

// buildMJ constructs a MergeJoin of R with itself on column a.
func buildMJ(t *testing.T, rows int) (*Executor, *plan.MergeJoin) {
	t.Helper()
	cat, _, ex, _ := fixture(t, rows, false)
	l := &plan.SeqScan{Table: "R", Alias: "l"}
	l.Out = plan.TableSchema(cat.Table("R"), "l")
	r := &plan.SeqScan{Table: "R", Alias: "r"}
	r.Out = plan.TableSchema(cat.Table("R"), "r")
	mj := &plan.MergeJoin{
		Left: l, Right: r,
		LeftKeys:  []sql.Expr{&sql.ColumnRef{Table: "l", Column: "a"}},
		RightKeys: []sql.Expr{&sql.ColumnRef{Table: "r", Column: "a"}},
	}
	mj.Out = append(append([]plan.ColRef(nil), l.Out...), r.Out...)
	return ex, mj
}

func TestMergeJoinMatchesHashJoin(t *testing.T) {
	ex, mj := buildMJ(t, 50)
	mjRows, err := ex.exec(mj, nil)
	if err != nil {
		t.Fatal(err)
	}
	hj := &plan.HashJoin{Left: mj.Left, Right: mj.Right, LeftKeys: mj.LeftKeys, RightKeys: mj.RightKeys}
	hj.Out = mj.Out
	hjRows, err := ex.exec(hj, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(mjRows) != len(hjRows) {
		t.Fatalf("merge join %d rows, hash join %d", len(mjRows), len(hjRows))
	}
	// Same multiset of rows.
	key := func(r datum.Row) string { return rowKey(r) }
	a := make([]string, len(mjRows))
	b := make([]string, len(hjRows))
	for i := range mjRows {
		a[i] = key(mjRows[i])
		b[i] = key(hjRows[i])
	}
	sort.Strings(a)
	sort.Strings(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row multisets differ at %d", i)
		}
	}
}

func TestMergeJoinDuplicateGroups(t *testing.T) {
	// 50 rows with a = i%10: each key has 5 rows on both sides → 10 keys
	// × 25 pairs = 250.
	ex, mj := buildMJ(t, 50)
	rows, err := ex.exec(mj, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 250 {
		t.Fatalf("rows = %d, want 250", len(rows))
	}
}

func TestMergeJoinNullKeysDropped(t *testing.T) {
	cat, mgr, ex, _ := fixture(t, 5, false)
	if _, _, err := mgr.Insert("R", datum.Row{datum.NewInt(100), datum.Null, datum.NewInt(0)}); err != nil {
		t.Fatal(err)
	}
	l := &plan.SeqScan{Table: "R", Alias: "l"}
	l.Out = plan.TableSchema(cat.Table("R"), "l")
	r := &plan.SeqScan{Table: "R", Alias: "r"}
	r.Out = plan.TableSchema(cat.Table("R"), "r")
	mj := &plan.MergeJoin{
		Left: l, Right: r,
		LeftKeys:  []sql.Expr{&sql.ColumnRef{Table: "l", Column: "a"}},
		RightKeys: []sql.Expr{&sql.ColumnRef{Table: "r", Column: "a"}},
	}
	mj.Out = append(append([]plan.ColRef(nil), l.Out...), r.Out...)
	rows, err := ex.exec(mj, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 5 distinct non-null keys self-join → 5 pairs; NULL row matches none.
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
}

func TestMergeJoinEmptySides(t *testing.T) {
	ex, mj := buildMJ(t, 0)
	rows, err := ex.exec(mj, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatal("empty join should be empty")
	}
}
