package executor

import (
	"sort"

	"onlinetuner/internal/datum"
	"onlinetuner/internal/par"
	"onlinetuner/internal/plan"
	"onlinetuner/internal/vec"
)

// topnKeyed is one TopN input row with its evaluated sort keys and
// original input ordinal. The ordinal is the final tiebreak, which makes
// the bounded heap's output exactly a stable full sort truncated to N —
// the same rows, in the same order, as the Sort+Limit pair TopN replaces.
type topnKeyed struct {
	row  datum.Row
	keys datum.Row
	ord  int64
}

func (e *run) topN(n *plan.TopN, c *Collector) ([]datum.Row, error) {
	in, err := e.exec(n.Child, c)
	if err != nil {
		return nil, err
	}
	if n.N <= 0 {
		return nil, nil
	}
	fns := make([]evalFunc, len(n.Keys))
	for i, k := range n.Keys {
		f, err := compile(k.Expr, n.Child.Schema())
		if err != nil {
			return nil, err
		}
		fns[i] = f
	}
	// cmp is the strict total order the operator selects under: sort keys
	// with DESC negation, then input ordinal.
	cmp := func(a, b topnKeyed) int {
		for j := range fns {
			c := a.keys[j].Compare(b.keys[j])
			if n.Keys[j].Desc {
				c = -c
			}
			if c != 0 {
				return c
			}
		}
		switch {
		case a.ord < b.ord:
			return -1
		case a.ord > b.ord:
			return 1
		}
		return 0
	}

	// Vectorized prefilter: a single plain-column key over a large input
	// runs the TopK prune kernel morsel by morsel, discarding rows that
	// provably cannot reach the heap before any per-row key allocation.
	// The kernel yields a superset of the true top N (it passes chunks it
	// cannot compare exactly), so the exact heap below makes every final
	// call; pruning changes speed, never output.
	cand := in
	var ords []int64
	useVec := false
	if len(n.Keys) == 1 && int64(len(in)) > 2*n.N {
		if ve, ok := compileVecExpr(n.Keys[0].Expr, n.Child.Schema()); ok && e.vecOn(len(in)) {
			useVec = true
			topk := vec.NewTopK(int(n.N), n.Keys[0].Desc)
			w := getVecWork()
			cand = cand[:0:0]
			var sel vec.Sel
			for i := 0; i < chunkBounds(len(in)); i++ {
				rows := chunkOf(in, i)
				w.m.reset(rows, nil)
				col, verr := ve.eval(&w.m)
				if verr != nil || !col.Uniform {
					// Evaluation fell back (mixed kinds); keep the morsel.
					for j := range rows {
						cand = append(cand, rows[j])
						ords = append(ords, int64(i*morselRows+j))
					}
					continue
				}
				sel = topk.Prune(col, sel)
				for _, k := range sel {
					cand = append(cand, rows[k])
					ords = append(ords, int64(i*morselRows+int(k)))
				}
			}
			putVecWork(w)
		}
	}
	markEngine(c, n, useVec)

	// Exact phase: evaluate keys chunk-parallel (disjoint ranges of ks,
	// like Sort), then select the N least rows.
	ks := make([]topnKeyed, len(cand))
	err = runMorsels(e, "topn-keys", chunkBounds(len(cand)),
		func(i int) (struct{}, error) {
			lo := i * morselRows
			for j, r := range chunkOf(cand, i) {
				keys := make(datum.Row, len(fns))
				for k, f := range fns {
					v, ferr := f(r)
					if ferr != nil {
						return struct{}{}, ferr
					}
					keys[k] = v
				}
				ord := int64(lo + j)
				if ords != nil {
					ord = ords[lo+j]
				}
				ks[lo+j] = topnKeyed{row: r, keys: keys, ord: ord}
			}
			return struct{}{}, nil
		},
		func(int, struct{}) error { return nil })
	if err != nil {
		return nil, err
	}
	if int64(len(ks)) <= n.N {
		// Nothing to discard: this is exactly the Sort the operator
		// replaces (ordinal tiebreak = stability).
		par.SortStablePooled(e.pool, ks, cmp)
	} else {
		// Bounded max-heap of the N least rows; the root is the greatest
		// kept row. cmp is a strict total order, so the selected set is
		// insertion-order independent.
		h := make([]topnKeyed, 0, n.N)
		for _, x := range ks {
			if int64(len(h)) < n.N {
				h = append(h, x)
				for j := len(h) - 1; j > 0; {
					p := (j - 1) / 2
					if cmp(h[j], h[p]) <= 0 {
						break
					}
					h[j], h[p] = h[p], h[j]
					j = p
				}
				continue
			}
			if cmp(x, h[0]) >= 0 {
				continue
			}
			h[0] = x
			for j := 0; ; {
				l, r := 2*j+1, 2*j+2
				g := j
				if l < len(h) && cmp(h[l], h[g]) > 0 {
					g = l
				}
				if r < len(h) && cmp(h[r], h[g]) > 0 {
					g = r
				}
				if g == j {
					break
				}
				h[j], h[g] = h[g], h[j]
				j = g
			}
		}
		ks = h
		sort.Slice(ks, func(i, j int) bool { return cmp(ks[i], ks[j]) < 0 })
	}
	out := make([]datum.Row, len(ks))
	for i := range ks {
		out[i] = ks[i].row
	}
	return out, nil
}
