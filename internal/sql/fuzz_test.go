package sql_test

import (
	"testing"

	"onlinetuner/internal/sql"
	"onlinetuner/internal/tpch"
)

// FuzzParse asserts the parser never panics: any byte sequence must
// either produce a statement or a regular error. The corpus is seeded
// with the full TPC-H query set (the workload every benchmark replays),
// the refresh-stream DML shapes, DDL, and a handful of syntactically
// gnarly fragments. Lives in package sql_test because the tpch seed
// generator itself imports sql.
func FuzzParse(f *testing.F) {
	g := tpch.NewGenerator(0.01, 1)
	for n := 1; n <= 22; n++ {
		f.Add(g.Query(n))
	}
	for _, s := range []string{
		"CREATE TABLE r (id INT, a INT, s VARCHAR, PRIMARY KEY (id))",
		"CREATE INDEX r_a ON r (a, id)",
		"DROP INDEX r_a",
		"INSERT INTO r (id, a, s) VALUES (1, 2, 'x'), (2, 3, 'y')",
		"UPDATE r SET a = a + 1, s = 'z' WHERE id = 5",
		"DELETE FROM r WHERE a > 10 AND s = 'x'",
		"EXPLAIN SELECT a FROM r WHERE a = 1 OR (a > 2 AND a < 7)",
		"SELECT a, COUNT(*) FROM r GROUP BY a ORDER BY a DESC LIMIT 3",
		"SELECT * FROM r, s WHERE r.id = s.id AND r.a IS NOT NULL",
		"SELECT 'it''s' FROM r",
		"select\t\na -- comment\nfrom r",
		"SELECT a FROM r WHERE s = 'unterminated",
		"((((((((((", "SELECT", "", "\x00\xff'\"",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		stmt, err := sql.Parse(text)
		if err == nil && stmt == nil {
			t.Fatalf("Parse(%q) returned no statement and no error", text)
		}
	})
}
