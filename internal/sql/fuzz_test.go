package sql_test

import (
	"testing"

	"onlinetuner/internal/sql"
	"onlinetuner/internal/tpch"
)

// FuzzParse asserts the parser never panics: any byte sequence must
// either produce a statement or a regular error. The corpus is seeded
// with the full TPC-H query set (the workload every benchmark replays),
// the refresh-stream DML shapes, DDL, and a handful of syntactically
// gnarly fragments. Lives in package sql_test because the tpch seed
// generator itself imports sql.
func FuzzParse(f *testing.F) {
	g := tpch.NewGenerator(0.01, 1)
	for n := 1; n <= 22; n++ {
		f.Add(g.Query(n))
	}
	for _, s := range []string{
		"CREATE TABLE r (id INT, a INT, s VARCHAR, PRIMARY KEY (id))",
		"CREATE INDEX r_a ON r (a, id)",
		"DROP INDEX r_a",
		"INSERT INTO r (id, a, s) VALUES (1, 2, 'x'), (2, 3, 'y')",
		"UPDATE r SET a = a + 1, s = 'z' WHERE id = 5",
		"DELETE FROM r WHERE a > 10 AND s = 'x'",
		"EXPLAIN SELECT a FROM r WHERE a = 1 OR (a > 2 AND a < 7)",
		"SELECT a, COUNT(*) FROM r GROUP BY a ORDER BY a DESC LIMIT 3",
		"SELECT * FROM r, s WHERE r.id = s.id AND r.a IS NOT NULL",
		"SELECT 'it''s' FROM r",
		"SELECT id FROM r WHERE id IN (SELECT id FROM s WHERE x < 10)",
		"SELECT id FROM r WHERE id NOT IN (SELECT id FROM s)",
		"SELECT id FROM r WHERE EXISTS (SELECT * FROM s WHERE s.id = r.id AND x > 5)",
		"SELECT id FROM r WHERE NOT EXISTS (SELECT * FROM s WHERE s.id = r.id)",
		"SELECT MIN(a) FROM r",
		"SELECT MAX(b), MIN(b) FROM r WHERE a = 17",
		"SELECT a FROM r ORDER BY a DESC, id LIMIT 10",
		"SELECT a FROM r WHERE a IN (SELECT x FROM s) ORDER BY a LIMIT 0",
		"select\t\na -- comment\nfrom r",
		"SELECT a FROM r WHERE s = 'unterminated",
		"((((((((((", "SELECT", "", "\x00\xff'\"",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		stmt, err := sql.Parse(text)
		if err == nil && stmt == nil {
			t.Fatalf("Parse(%q) returned no statement and no error", text)
		}
	})
}

// FuzzFingerprint asserts the fingerprinter's contract on every
// parse-able statement: fingerprinting is deterministic, the binding
// list matches the lifted literals, and re-substituting the bindings
// round-trips to an equivalent AST (same rendering, same fingerprint).
func FuzzFingerprint(f *testing.F) {
	g := tpch.NewGenerator(0.01, 1)
	for n := 1; n <= 22; n++ {
		f.Add(g.Query(n))
	}
	for _, s := range []string{
		"CREATE TABLE r (id INT, a INT, s VARCHAR, PRIMARY KEY (id))",
		"CREATE INDEX r_a ON r (a, id)",
		"DROP INDEX r_a",
		"INSERT INTO r (id, a, s) VALUES (1, 2, 'x'), (2, 3, 'y')",
		"UPDATE r SET a = a + 1, s = 'z' WHERE id = 5",
		"DELETE FROM r WHERE a > 10 AND s = 'x'",
		"EXPLAIN SELECT a FROM r WHERE a = 1 OR (a > 2 AND a < 7)",
		"SELECT a, COUNT(*) FROM r GROUP BY a ORDER BY a DESC LIMIT 3",
		"SELECT * FROM r, s WHERE r.id = s.id AND r.a IS NOT NULL",
		"SELECT 'it''s' FROM r",
		"SELECT id FROM r WHERE id IN (SELECT id FROM s WHERE x < 10)",
		"SELECT id FROM r WHERE NOT EXISTS (SELECT * FROM s WHERE s.id = r.id)",
		"SELECT MAX(b), MIN(b) FROM r WHERE a = 17",
		"SELECT a FROM r ORDER BY a DESC, id LIMIT 10",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		stmt, err := sql.Parse(text)
		if err != nil {
			return
		}
		f1 := sql.FingerprintOf(stmt)
		f2 := sql.FingerprintOf(stmt)
		if f1.Hash != f2.Hash || f1.Template != f2.Template || len(f1.Bindings) != len(f2.Bindings) {
			t.Fatalf("fingerprint of %q not deterministic", text)
		}
		if len(f1.Lits) != len(f1.Bindings) {
			t.Fatalf("%q: %d literals vs %d bindings", text, len(f1.Lits), len(f1.Bindings))
		}
		for i, l := range f1.Lits {
			if !l.Value.Equal(f1.Bindings[i]) {
				t.Fatalf("%q: binding %d diverges from its literal", text, i)
			}
		}
		back, err := sql.Rebind(stmt, f1.Bindings)
		if err != nil {
			t.Fatalf("Rebind(%q): %v", text, err)
		}
		if back.String() != stmt.String() {
			t.Fatalf("%q: rebind round trip changed AST:\n%s\n%s", text, stmt, back)
		}
		f3 := sql.FingerprintOf(back)
		if f3.Hash != f1.Hash || f3.Template != f1.Template {
			t.Fatalf("%q: rebind round trip changed fingerprint", text)
		}
	})
}
