package sql_test

import (
	"strings"
	"testing"

	"onlinetuner/internal/sql"
)

func fp(t *testing.T, text string) (sql.Statement, sql.Fingerprint) {
	t.Helper()
	stmt, err := sql.Parse(text)
	if err != nil {
		t.Fatalf("Parse(%q): %v", text, err)
	}
	return stmt, sql.FingerprintOf(stmt)
}

func TestFingerprintLiftsLiterals(t *testing.T) {
	_, f := fp(t, "SELECT a, b FROM R WHERE a < 100 AND s = 'x'")
	if len(f.Bindings) != 2 {
		t.Fatalf("bindings = %v, want 2", f.Bindings)
	}
	if f.Bindings[0].Int() != 100 || f.Bindings[1].Str() != "x" {
		t.Errorf("bindings = %v", f.Bindings)
	}
	if !strings.Contains(f.Template, "$1") || !strings.Contains(f.Template, "$2") {
		t.Errorf("template missing placeholders: %s", f.Template)
	}
	if strings.Contains(f.Template, "100") || strings.Contains(f.Template, "'x'") {
		t.Errorf("template leaked literals: %s", f.Template)
	}
	if len(f.Lits) != len(f.Bindings) {
		t.Errorf("Lits/Bindings mismatch: %d vs %d", len(f.Lits), len(f.Bindings))
	}
}

func TestFingerprintTemplateSharing(t *testing.T) {
	// Same shape, different constants and identifier case: one template.
	_, f1 := fp(t, "SELECT a FROM R WHERE a < 100")
	_, f2 := fp(t, "select A from r where A < 7")
	if f1.Hash != f2.Hash || f1.Template != f2.Template {
		t.Errorf("templates differ:\n%s\n%s", f1.Template, f2.Template)
	}
	if f2.Bindings[0].Int() != 7 {
		t.Errorf("bindings = %v", f2.Bindings)
	}
	// Different shapes: different templates.
	_, f3 := fp(t, "SELECT a FROM R WHERE a > 100")
	if f3.Hash == f1.Hash {
		t.Error("different operators share a template")
	}
	_, f4 := fp(t, "SELECT a FROM R WHERE a < 100 LIMIT 5")
	_, f5 := fp(t, "SELECT a FROM R WHERE a < 100 LIMIT 6")
	if f4.Hash == f5.Hash {
		t.Error("LIMIT must be part of the template, not a binding")
	}
}

func TestFingerprintDeterminism(t *testing.T) {
	for _, q := range []string{
		"SELECT DISTINCT a, COUNT(*) AS n FROM R WHERE a = 1 OR (b > 2 AND b < 7) GROUP BY a ORDER BY a DESC LIMIT 3",
		"INSERT INTO r (id, a, s) VALUES (1, 2, 'x'), (2, 3, 'y')",
		"UPDATE r SET a = a + 1, s = 'z' WHERE id = 5",
		"DELETE FROM r WHERE a > 10 AND s = 'x'",
		"SELECT * FROM r, s WHERE r.id = s.id AND r.a IS NOT NULL",
		"CREATE TABLE r (id INT, a INT, s VARCHAR, PRIMARY KEY (id))",
		"CREATE INDEX r_a ON r (a, id)",
		"DROP INDEX r_a",
		"EXPLAIN SELECT a FROM r WHERE a = 1",
	} {
		stmt, f1 := fp(t, q)
		f2 := sql.FingerprintOf(stmt)
		if f1.Hash != f2.Hash || f1.Template != f2.Template || len(f1.Bindings) != len(f2.Bindings) {
			t.Errorf("%s: fingerprint not deterministic", q)
		}
	}
}

func TestRebindRoundTrip(t *testing.T) {
	for _, q := range []string{
		"SELECT a, b AS bb FROM R WHERE a < 100 AND s = 'x' ORDER BY b LIMIT 10",
		"INSERT INTO r (id, a) VALUES (1, 2), (3, 4)",
		"UPDATE r SET a = 7 WHERE id = 5 AND a <> 2",
		"DELETE FROM r WHERE a > 10",
		"SELECT a, COUNT(*) FROM r WHERE NOT (a = 3) GROUP BY a",
		"EXPLAIN SELECT a FROM r WHERE a = 1 OR (a > 2 AND a < 7)",
	} {
		stmt, f := fp(t, q)
		back, err := sql.Rebind(stmt, f.Bindings)
		if err != nil {
			t.Fatalf("%s: Rebind: %v", q, err)
		}
		if back.String() != stmt.String() {
			t.Errorf("%s: round trip changed AST:\n%s\n%s", q, stmt, back)
		}
		f2 := sql.FingerprintOf(back)
		if f2.Hash != f.Hash || f2.Template != f.Template {
			t.Errorf("%s: round trip changed fingerprint", q)
		}
	}
}

func TestRebindSubstitutesNewValues(t *testing.T) {
	stmt, f := fp(t, "SELECT a FROM R WHERE a < 100")
	_, f2 := fp(t, "SELECT a FROM R WHERE a < 42")
	out, err := sql.Rebind(stmt, f2.Bindings)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "42") {
		t.Errorf("rebound statement = %s", out)
	}
	// The original AST must be untouched.
	if !strings.Contains(stmt.String(), "100") {
		t.Errorf("rebind mutated its input: %s", stmt)
	}
	if len(f.Bindings) != 1 {
		t.Fatalf("bindings = %v", f.Bindings)
	}
	// Binding-count mismatches are errors, not silent truncation.
	if _, err := sql.Rebind(stmt, nil); err == nil {
		t.Error("Rebind with too few bindings succeeded")
	}
	if _, err := sql.Rebind(stmt, append(f.Bindings, f.Bindings[0])); err == nil {
		t.Error("Rebind with too many bindings succeeded")
	}
}

func TestMapLiterals(t *testing.T) {
	stmt, f := fp(t, "SELECT a FROM R WHERE a < 100 AND b = 5")
	sel := stmt.(*sql.Select)
	n := 0
	out := sql.MapLiterals(sel.Where, func(l *sql.Literal) sql.Expr {
		n++
		return l
	})
	if n != 2 {
		t.Errorf("visited %d literals, want 2", n)
	}
	if out.String() != sel.Where.String() {
		t.Errorf("identity map changed expr: %s vs %s", out, sel.Where)
	}
	_ = f
}
