// Package sql implements the SQL front end: a hand-written lexer, the
// abstract syntax tree, and a recursive-descent parser for the query and
// DML/DDL subset the engine supports:
//
//	SELECT [DISTINCT] list FROM t [JOIN t ON ...]* [WHERE ...]
//	       [GROUP BY ...] [ORDER BY ...] [LIMIT n]
//	INSERT INTO t VALUES (...), ... | INSERT INTO t SELECT ...
//	UPDATE t SET c=expr, ... [WHERE ...]
//	DELETE FROM t [WHERE ...]
//	CREATE TABLE t (col TYPE, ..., PRIMARY KEY (cols))
//	CREATE INDEX name ON t (cols) | DROP INDEX name
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TEOF TokenKind = iota
	TIdent
	TKeyword
	TInt
	TFloat
	TString
	TSymbol // ( ) , . ; * = < > <= >= <> + - /
)

// Token is one lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased, identifiers preserved
	Pos  int
}

func (t Token) String() string {
	switch t.Kind {
	case TEOF:
		return "<eof>"
	case TString:
		return "'" + t.Text + "'"
	default:
		return t.Text
	}
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true,
	"SET": true, "DELETE": true, "CREATE": true, "DROP": true, "TABLE": true,
	"INDEX": true, "ON": true, "PRIMARY": true, "KEY": true, "JOIN": true,
	"INNER": true, "GROUP": true, "BY": true, "ORDER": true, "ASC": true,
	"DESC": true, "LIMIT": true, "AS": true, "DISTINCT": true, "BETWEEN": true,
	"IN": true, "NULL": true, "INT": true, "FLOAT": true, "VARCHAR": true,
	"DATE": true, "BOOL": true, "COUNT": true, "SUM": true, "AVG": true,
	"MIN": true, "MAX": true, "TRUE": true, "FALSE": true, "IS": true,
	"LIKE": true, "EXPLAIN": true, "EXISTS": true,
}

// Lex tokenizes the input. It returns an error with position information
// on any malformed token.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, Token{Kind: TKeyword, Text: up, Pos: start})
			} else {
				toks = append(toks, Token{Kind: TIdent, Text: word, Pos: start})
			}
		case c >= '0' && c <= '9':
			start := i
			isFloat := false
			for i < n && (input[i] >= '0' && input[i] <= '9') {
				i++
			}
			if i < n && input[i] == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9' {
				isFloat = true
				i++
				for i < n && (input[i] >= '0' && input[i] <= '9') {
					i++
				}
			}
			kind := TInt
			if isFloat {
				kind = TFloat
			}
			toks = append(toks, Token{Kind: kind, Text: input[start:i], Pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string literal at position %d", start)
			}
			toks = append(toks, Token{Kind: TString, Text: sb.String(), Pos: start})
		case c == '<':
			if i+1 < n && (input[i+1] == '=' || input[i+1] == '>') {
				toks = append(toks, Token{Kind: TSymbol, Text: input[i : i+2], Pos: i})
				i += 2
			} else {
				toks = append(toks, Token{Kind: TSymbol, Text: "<", Pos: i})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, Token{Kind: TSymbol, Text: ">=", Pos: i})
				i += 2
			} else {
				toks = append(toks, Token{Kind: TSymbol, Text: ">", Pos: i})
				i++
			}
		case c == '!':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, Token{Kind: TSymbol, Text: "<>", Pos: i})
				i += 2
			} else {
				return nil, fmt.Errorf("sql: unexpected character %q at position %d", c, i)
			}
		case strings.ContainsRune("(),.;*=+-/", rune(c)):
			toks = append(toks, Token{Kind: TSymbol, Text: string(c), Pos: i})
			i++
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at position %d", c, i)
		}
	}
	toks = append(toks, Token{Kind: TEOF, Pos: n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
