package sql

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"onlinetuner/internal/datum"
)

// Parse parses a single SQL statement.
func Parse(input string) (Statement, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: input}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	// Allow a trailing semicolon.
	if p.peek().Kind == TSymbol && p.peek().Text == ";" {
		p.next()
	}
	if p.peek().Kind != TEOF {
		return nil, p.errorf("unexpected trailing token %s", p.peek())
	}
	return stmt, nil
}

type parser struct {
	toks []Token
	pos  int
	src  string
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("sql: %s (at position %d in %q)", fmt.Sprintf(format, args...), p.peek().Pos, truncate(p.src))
}

func truncate(s string) string {
	if len(s) > 60 {
		return s[:57] + "..."
	}
	return s
}

func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.Kind == TKeyword && t.Text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return p.errorf("expected %s, got %s", kw, p.peek())
	}
	return nil
}

func (p *parser) symbol(s string) bool {
	t := p.peek()
	if t.Kind == TSymbol && t.Text == s {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.symbol(s) {
		return p.errorf("expected %q, got %s", s, p.peek())
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.Kind != TIdent {
		return "", p.errorf("expected identifier, got %s", t)
	}
	p.next()
	return t.Text, nil
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.Kind != TKeyword {
		return nil, p.errorf("expected statement keyword, got %s", t)
	}
	switch t.Text {
	case "EXPLAIN":
		p.next()
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		return &Explain{Stmt: inner}, nil
	case "SELECT":
		return p.parseSelect()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	}
	return nil, p.errorf("unsupported statement %s", t)
}

func (p *parser) parseSelect() (*Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{Limit: -1}
	sel.Distinct = p.keyword("DISTINCT")

	for {
		if p.symbol("*") {
			sel.Items = append(sel.Items, SelectItem{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.keyword("AS") {
				a, err := p.ident()
				if err != nil {
					return nil, err
				}
				item.Alias = a
			} else if p.peek().Kind == TIdent {
				item.Alias = p.next().Text
			}
			sel.Items = append(sel.Items, item)
		}
		if !p.symbol(",") {
			break
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	sel.From = from

	// Comma-separated FROM items become joins with ON TRUE; their join
	// predicates stay in WHERE and the optimizer recovers them.
	for p.symbol(",") {
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		sel.Joins = append(sel.Joins, JoinClause{Right: tr, On: &Literal{Value: datum.NewBool(true)}})
	}
	for {
		if p.keyword("INNER") {
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		} else if !p.keyword("JOIN") {
			break
		}
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Joins = append(sel.Joins, JoinClause{Right: tr, On: on})
	}

	if p.keyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.keyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, g)
			if !p.symbol(",") {
				break
			}
		}
	}
	if p.keyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.keyword("DESC") {
				item.Desc = true
			} else {
				p.keyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.symbol(",") {
				break
			}
		}
	}
	if p.keyword("LIMIT") {
		t := p.peek()
		if t.Kind != TInt {
			return nil, p.errorf("expected integer after LIMIT, got %s", t)
		}
		p.next()
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad LIMIT value %q", t.Text)
		}
		sel.Limit = n
	}
	return sel, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Table: name}
	if p.keyword("AS") {
		a, err := p.ident()
		if err != nil {
			return TableRef{}, err
		}
		tr.Alias = a
	} else if p.peek().Kind == TIdent {
		tr.Alias = p.next().Text
	}
	return tr, nil
}

func (p *parser) parseInsert() (Statement, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if p.symbol("(") {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, c)
			if !p.symbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if p.peek().Kind == TKeyword && p.peek().Text == "SELECT" {
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		ins.Query = q
		return ins, nil
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.symbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.symbol(",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	u := &Update{Table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Set = append(u.Set, Assignment{Column: col, Value: val})
		if !p.symbol(",") {
			break
		}
	}
	if p.keyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Where = w
	}
	return u, nil
}

func (p *parser) parseDelete() (Statement, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := &Delete{Table: table}
	if p.keyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Where = w
	}
	return d, nil
}

func (p *parser) parseCreate() (Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if p.keyword("TABLE") {
		return p.parseCreateTable()
	}
	if p.keyword("INDEX") {
		return p.parseCreateIndex()
	}
	return nil, p.errorf("expected TABLE or INDEX after CREATE")
}

func (p *parser) parseCreateTable() (Statement, error) {
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	ct := &CreateTable{Table: table}
	for {
		if p.keyword("PRIMARY") {
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			for {
				c, err := p.ident()
				if err != nil {
					return nil, err
				}
				ct.PrimaryKey = append(ct.PrimaryKey, c)
				if !p.symbol(",") {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
		} else {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			kind, err := p.parseType()
			if err != nil {
				return nil, err
			}
			ct.Columns = append(ct.Columns, ColumnDef{Name: name, Kind: kind})
		}
		if !p.symbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	if len(ct.PrimaryKey) == 0 {
		return nil, p.errorf("CREATE TABLE %s requires a PRIMARY KEY clause", table)
	}
	return ct, nil
}

func (p *parser) parseType() (datum.Kind, error) {
	t := p.peek()
	if t.Kind != TKeyword {
		return 0, p.errorf("expected type, got %s", t)
	}
	p.next()
	var k datum.Kind
	switch t.Text {
	case "INT":
		k = datum.KInt
	case "FLOAT":
		k = datum.KFloat
	case "VARCHAR":
		k = datum.KString
		// Optional (n) length, accepted and ignored.
		if p.symbol("(") {
			if p.peek().Kind != TInt {
				return 0, p.errorf("expected length in VARCHAR(n)")
			}
			p.next()
			if err := p.expectSymbol(")"); err != nil {
				return 0, err
			}
		}
	case "DATE":
		k = datum.KDate
	case "BOOL":
		k = datum.KBool
	default:
		return 0, p.errorf("unsupported type %s", t.Text)
	}
	return k, nil
}

func (p *parser) parseCreateIndex() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	ci := &CreateIndex{Name: name, Table: table}
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		ci.Columns = append(ci.Columns, c)
		if !p.symbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return ci, nil
}

func (p *parser) parseDrop() (Statement, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INDEX"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DropIndex{Name: name}, nil
}

// Expression grammar (precedence climbing):
//
//	orExpr   := andExpr (OR andExpr)*
//	andExpr  := notExpr (AND notExpr)*
//	notExpr  := NOT notExpr | cmpExpr
//	cmpExpr  := addExpr ((=|<>|<|<=|>|>=) addExpr
//	          | BETWEEN addExpr AND addExpr
//	          | IN (lit, ...) | IS [NOT] NULL)?
//	addExpr  := mulExpr ((+|-) mulExpr)*
//	mulExpr  := unary ((*|/) unary)*
//	unary    := primary | - primary
//	primary  := literal | funcCall | columnRef | ( orExpr )
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.keyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.keyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.keyword("NOT") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{Inner: inner}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind == TSymbol {
		switch t.Text {
		case "=", "<>", "<", "<=", ">", ">=":
			p.next()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: t.Text, Left: left, Right: right}, nil
		}
	}
	if t.Kind == TKeyword {
		switch t.Text {
		case "BETWEEN":
			p.next()
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{
				Op:    "AND",
				Left:  &BinaryExpr{Op: ">=", Left: left, Right: lo},
				Right: &BinaryExpr{Op: "<=", Left: left, Right: hi},
			}, nil
		case "IN":
			p.next()
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			if p.peek().Kind == TKeyword && p.peek().Text == "SELECT" {
				q, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return &InSubquery{Left: left, Query: q}, nil
			}
			var or Expr
			for {
				v, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				eq := &BinaryExpr{Op: "=", Left: left, Right: v}
				if or == nil {
					or = eq
				} else {
					or = &BinaryExpr{Op: "OR", Left: or, Right: eq}
				}
				if !p.symbol(",") {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return or, nil
		case "IS":
			p.next()
			not := p.keyword("NOT")
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			return &IsNullExpr{Inner: left, Not: not}, nil
		case "LIKE":
			p.next()
			return p.parseLikeTail(left, false)
		case "NOT":
			// Infix NOT introduces NOT LIKE and NOT IN (SELECT ...) here
			// (prefix NOT is handled by parseNot); NOT BETWEEN and NOT IN
			// over a literal list stay unsupported.
			save := p.pos
			p.next()
			if p.keyword("LIKE") {
				return p.parseLikeTail(left, true)
			}
			if p.keyword("IN") && p.symbol("(") && p.peek().Kind == TKeyword && p.peek().Text == "SELECT" {
				q, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return &InSubquery{Left: left, Query: q, Not: true}, nil
			}
			p.pos = save
		}
	}
	return left, nil
}

// parseLikeTail parses the pattern operand of [NOT] LIKE. The pattern
// must be a string literal so the executor can compile the matcher (and
// its literal prefilters) once per statement.
func (p *parser) parseLikeTail(left Expr, not bool) (Expr, error) {
	t := p.peek()
	if t.Kind != TString {
		return nil, p.errorf("expected string pattern after LIKE, got %s", t)
	}
	p.next()
	return &LikeExpr{Expr: left, Pattern: t.Text, Not: not}, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TSymbol && (t.Text == "+" || t.Text == "-") {
			p.next()
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.Text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TSymbol && (t.Text == "*" || t.Text == "/") {
			p.next()
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.Text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.symbol("-") {
		inner, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		if lit, ok := inner.(*Literal); ok {
			switch lit.Value.Kind() {
			case datum.KInt:
				return &Literal{Value: datum.NewInt(-lit.Value.Int())}, nil
			case datum.KFloat:
				return &Literal{Value: datum.NewFloat(-lit.Value.Float())}, nil
			}
		}
		return &BinaryExpr{Op: "-", Left: &Literal{Value: datum.NewInt(0)}, Right: inner}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TInt:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer %q", t.Text)
		}
		return &Literal{Value: datum.NewInt(v)}, nil
	case TFloat:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errorf("bad float %q", t.Text)
		}
		return &Literal{Value: datum.NewFloat(v)}, nil
	case TString:
		p.next()
		return &Literal{Value: datum.NewString(t.Text)}, nil
	case TKeyword:
		switch t.Text {
		case "NULL":
			p.next()
			return &Literal{Value: datum.Null}, nil
		case "TRUE":
			p.next()
			return &Literal{Value: datum.NewBool(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Value: datum.NewBool(false)}, nil
		case "DATE":
			// DATE 'YYYY-MM-DD'
			p.next()
			lt := p.peek()
			if lt.Kind != TString {
				return nil, p.errorf("expected date string after DATE")
			}
			p.next()
			d, err := ParseDate(lt.Text)
			if err != nil {
				return nil, p.errorf("%v", err)
			}
			return &Literal{Value: d}, nil
		case "EXISTS":
			p.next()
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			q, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &ExistsExpr{Query: q}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			p.next()
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			f := &FuncExpr{Name: t.Text}
			if p.symbol("*") {
				if t.Text != "COUNT" {
					return nil, p.errorf("%s(*) is not valid", t.Text)
				}
				f.Star = true
			} else {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				f.Arg = arg
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return f, nil
		}
		return nil, p.errorf("unexpected keyword %s in expression", t.Text)
	case TIdent:
		p.next()
		if p.symbol(".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.Text, Column: col}, nil
		}
		return &ColumnRef{Column: t.Text}, nil
	case TSymbol:
		if t.Text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errorf("unexpected token %s in expression", t)
}

// ParseDate converts 'YYYY-MM-DD' into a date datum (days since epoch).
func ParseDate(s string) (datum.Datum, error) {
	t, err := time.Parse("2006-01-02", strings.TrimSpace(s))
	if err != nil {
		return datum.Null, fmt.Errorf("sql: bad date %q: %v", s, err)
	}
	return datum.NewDate(t.Unix() / 86400), nil
}
