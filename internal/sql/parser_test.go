package sql

import (
	"strings"
	"testing"

	"onlinetuner/internal/datum"
)

func mustParse(t *testing.T, q string) Statement {
	t.Helper()
	s, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return s
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a, b FROM R WHERE a <= 10 AND b <> 'x''y' -- comment\n")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.Kind == TEOF {
			break
		}
		texts = append(texts, tk.Text)
	}
	want := "SELECT a , b FROM R WHERE a <= 10 AND b <> x'y"
	if got := strings.Join(texts, " "); got != want {
		t.Errorf("tokens = %q, want %q", got, want)
	}
}

func TestLexErrors(t *testing.T) {
	for _, q := range []string{"SELECT 'unterminated", "SELECT @", "a ! b"} {
		if _, err := Lex(q); err == nil {
			t.Errorf("Lex(%q) should fail", q)
		}
	}
	// != is accepted as <>.
	toks, err := Lex("a != b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Text != "<>" {
		t.Errorf("!= should lex as <>, got %q", toks[1].Text)
	}
}

func TestParseSelectPaperQueries(t *testing.T) {
	// The three queries from Section 4.1 of the paper.
	q1 := mustParse(t, "SELECT a,b,c,id FROM R WHERE a<100").(*Select)
	if len(q1.Items) != 4 || q1.From.Table != "R" {
		t.Errorf("q1 = %v", q1)
	}
	be, ok := q1.Where.(*BinaryExpr)
	if !ok || be.Op != "<" {
		t.Fatalf("q1 where = %v", q1.Where)
	}
	q2 := mustParse(t, "SELECT a,d,e,id FROM R WHERE a<100").(*Select)
	if q2.String() != "SELECT a, d, e, id FROM R WHERE (a < 100)" {
		t.Errorf("q2 round trip = %q", q2.String())
	}
	q3 := mustParse(t, "INSERT INTO R SELECT * FROM S").(*Insert)
	if q3.Table != "R" || q3.Query == nil || !q3.Query.Items[0].Star {
		t.Errorf("q3 = %v", q3)
	}
}

func TestParseJoin(t *testing.T) {
	s := mustParse(t, "SELECT S.b FROM R,S WHERE R.x=S.y AND R.a=5 AND S.y=8").(*Select)
	if s.From.Table != "R" || len(s.Joins) != 1 || s.Joins[0].Right.Table != "S" {
		t.Fatalf("from/joins = %v %v", s.From, s.Joins)
	}
	// Explicit JOIN ... ON.
	s2 := mustParse(t, "SELECT r.a FROM R r JOIN S s ON r.x = s.y WHERE s.b > 3").(*Select)
	if s2.From.Alias != "r" || s2.Joins[0].Right.Alias != "s" {
		t.Errorf("aliases = %v %v", s2.From, s2.Joins[0].Right)
	}
	on, ok := s2.Joins[0].On.(*BinaryExpr)
	if !ok || on.Op != "=" {
		t.Errorf("on = %v", s2.Joins[0].On)
	}
	// INNER JOIN spelled out.
	s3 := mustParse(t, "SELECT a FROM R INNER JOIN S ON R.x = S.y").(*Select)
	if len(s3.Joins) != 1 {
		t.Error("inner join not parsed")
	}
}

func TestParseGroupOrderLimit(t *testing.T) {
	s := mustParse(t, `SELECT a, COUNT(*), SUM(b) AS total FROM R
		WHERE b BETWEEN 5 AND 10 GROUP BY a ORDER BY a DESC, total LIMIT 7`).(*Select)
	if len(s.GroupBy) != 1 || len(s.OrderBy) != 2 || s.Limit != 7 {
		t.Fatalf("group/order/limit = %v %v %d", s.GroupBy, s.OrderBy, s.Limit)
	}
	if !s.OrderBy[0].Desc || s.OrderBy[1].Desc {
		t.Error("order directions wrong")
	}
	// BETWEEN desugars to >= AND <=.
	w := s.Where.(*BinaryExpr)
	if w.Op != "AND" {
		t.Fatalf("where = %v", s.Where)
	}
	if w.Left.(*BinaryExpr).Op != ">=" || w.Right.(*BinaryExpr).Op != "<=" {
		t.Error("BETWEEN desugaring wrong")
	}
	if s.Items[2].Alias != "total" {
		t.Error("alias lost")
	}
}

func TestParseInDesugarsToOr(t *testing.T) {
	s := mustParse(t, "SELECT a FROM R WHERE a IN (1, 2, 3)").(*Select)
	or1, ok := s.Where.(*BinaryExpr)
	if !ok || or1.Op != "OR" {
		t.Fatalf("where = %v", s.Where)
	}
}

func TestParseDML(t *testing.T) {
	ins := mustParse(t, "INSERT INTO R (id, a) VALUES (1, 2), (3, 4)").(*Insert)
	if len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Errorf("insert = %v", ins)
	}
	up := mustParse(t, "UPDATE R SET a = a + 1, b = 0 WHERE id = 5").(*Update)
	if len(up.Set) != 2 || up.Where == nil {
		t.Errorf("update = %v", up)
	}
	del := mustParse(t, "DELETE FROM R WHERE a > 10").(*Delete)
	if del.Table != "R" || del.Where == nil {
		t.Errorf("delete = %v", del)
	}
	del2 := mustParse(t, "DELETE FROM R").(*Delete)
	if del2.Where != nil {
		t.Error("where should be nil")
	}
}

func TestParseDDL(t *testing.T) {
	ct := mustParse(t, `CREATE TABLE R (id INT, a INT, name VARCHAR(32), price FLOAT,
		d DATE, ok BOOL, PRIMARY KEY (id))`).(*CreateTable)
	if len(ct.Columns) != 6 || len(ct.PrimaryKey) != 1 {
		t.Fatalf("create table = %v", ct)
	}
	kinds := []datum.Kind{datum.KInt, datum.KInt, datum.KString, datum.KFloat, datum.KDate, datum.KBool}
	for i, k := range kinds {
		if ct.Columns[i].Kind != k {
			t.Errorf("column %d kind = %v, want %v", i, ct.Columns[i].Kind, k)
		}
	}
	if _, err := Parse("CREATE TABLE T (a INT)"); err == nil {
		t.Error("missing primary key accepted")
	}
	ci := mustParse(t, "CREATE INDEX I2 ON R (a, b, c, id)").(*CreateIndex)
	if ci.Name != "I2" || len(ci.Columns) != 4 {
		t.Errorf("create index = %v", ci)
	}
	di := mustParse(t, "DROP INDEX I2").(*DropIndex)
	if di.Name != "I2" {
		t.Errorf("drop index = %v", di)
	}
}

func TestParseExprPrecedence(t *testing.T) {
	s := mustParse(t, "SELECT a FROM R WHERE a + 2 * 3 = 7 OR a < 1 AND b > 2").(*Select)
	// OR is the root.
	or, ok := s.Where.(*BinaryExpr)
	if !ok || or.Op != "OR" {
		t.Fatalf("root = %v", s.Where)
	}
	// Left: a + (2*3) = 7.
	eq := or.Left.(*BinaryExpr)
	if eq.Op != "=" {
		t.Fatalf("left = %v", or.Left)
	}
	add := eq.Left.(*BinaryExpr)
	if add.Op != "+" || add.Right.(*BinaryExpr).Op != "*" {
		t.Error("arithmetic precedence wrong")
	}
	// Right: AND binds tighter than OR.
	if or.Right.(*BinaryExpr).Op != "AND" {
		t.Error("AND/OR precedence wrong")
	}
}

func TestParseNegativeAndNull(t *testing.T) {
	s := mustParse(t, "SELECT a FROM R WHERE a = -5 AND b IS NOT NULL AND c IS NULL").(*Select)
	and1 := s.Where.(*BinaryExpr)
	isNull := and1.Right.(*IsNullExpr)
	if isNull.Not {
		t.Error("IS NULL parsed as NOT NULL")
	}
	// -5 folds to a literal.
	eq := and1.Left.(*BinaryExpr).Left.(*BinaryExpr)
	lit, ok := eq.Right.(*Literal)
	if !ok || lit.Value.Int() != -5 {
		t.Errorf("negative literal = %v", eq.Right)
	}
}

func TestParseDateLiteral(t *testing.T) {
	s := mustParse(t, "SELECT a FROM R WHERE d >= DATE '1995-01-01'").(*Select)
	lit := s.Where.(*BinaryExpr).Right.(*Literal)
	if lit.Value.Kind() != datum.KDate {
		t.Fatalf("kind = %v", lit.Value.Kind())
	}
	// 1995-01-01 is 9131 days after 1970-01-01.
	if lit.Value.Int() != 9131 {
		t.Errorf("days = %d, want 9131", lit.Value.Int())
	}
	if _, err := Parse("SELECT a FROM R WHERE d > DATE 'nope'"); err == nil {
		t.Error("bad date accepted")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC a FROM R",
		"SELECT FROM R",
		"SELECT a FROM",
		"SELECT a FROM R WHERE",
		"INSERT INTO",
		"UPDATE R SET",
		"SELECT a FROM R LIMIT x",
		"SELECT SUM(*) FROM R",
		"SELECT a FROM R GROUP",
		"SELECT a FROM R extra nonsense --",
		"CREATE VIEW v",
		"DROP TABLE R",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	mustParse(t, "SELECT a FROM R;")
}

func TestStatementStringRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT DISTINCT a, b FROM R WHERE (a < 100) ORDER BY a LIMIT 5",
		"INSERT INTO R VALUES (1, 'x')",
		"UPDATE R SET a = 1 WHERE (b = 2)",
		"DELETE FROM R WHERE (a > 10)",
		"DROP INDEX foo",
	}
	for _, q := range queries {
		s := mustParse(t, q)
		s2 := mustParse(t, s.String())
		if s.String() != s2.String() {
			t.Errorf("round trip diverged:\n  %q\n  %q", s.String(), s2.String())
		}
	}
}

func TestParseExplain(t *testing.T) {
	e, ok := mustParse(t, "EXPLAIN SELECT a FROM R WHERE a < 5").(*Explain)
	if !ok {
		t.Fatal("not an Explain")
	}
	if _, ok := e.Stmt.(*Select); !ok {
		t.Fatalf("inner = %T", e.Stmt)
	}
	if e.String() != "EXPLAIN SELECT a FROM R WHERE (a < 5)" {
		t.Errorf("String = %q", e.String())
	}
	// EXPLAIN wraps DML too.
	if _, ok := mustParse(t, "EXPLAIN DELETE FROM R").(*Explain); !ok {
		t.Error("EXPLAIN DELETE not parsed")
	}
	// Nested EXPLAIN parses (the engine handles only the outer layer,
	// but the grammar is uniform).
	if _, ok := mustParse(t, "EXPLAIN EXPLAIN SELECT a FROM R").(*Explain); !ok {
		t.Error("nested EXPLAIN not parsed")
	}
	if _, err := Parse("EXPLAIN"); err == nil {
		t.Error("bare EXPLAIN accepted")
	}
}
