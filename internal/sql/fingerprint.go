package sql

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"onlinetuner/internal/datum"
)

// Fingerprint is the canonical form of a statement: the statement text
// with every literal lifted out and replaced by a positional placeholder
// ($1, $2, ...), identifiers lower-cased, and a stable 64-bit hash of
// that template. Two statements that differ only in literal constants
// (or identifier case) share a template and hash; their constants are
// the Bindings, in template order.
//
// The template is a cache key, not SQL: it is never re-parsed. Lits
// holds the *Literal nodes of the fingerprinted AST in binding order, so
// a caller holding the AST can map each literal pointer to its slot.
type Fingerprint struct {
	Hash     uint64
	Template string
	Bindings []datum.Datum
	Lits     []*Literal
}

// FingerprintOf canonicalizes a statement. It is deterministic: the same
// AST always yields the same template, hash and binding order.
func FingerprintOf(stmt Statement) Fingerprint {
	w := &fpWriter{}
	w.stmt(stmt)
	h := fnv.New64a()
	_, _ = h.Write([]byte(w.sb.String()))
	return Fingerprint{
		Hash:     h.Sum64(),
		Template: w.sb.String(),
		Bindings: w.bindings,
		Lits:     w.lits,
	}
}

// fpWriter renders the canonical template, lifting literals as it goes.
// The rendering mirrors the AST String() methods so that the template
// order of placeholders equals the syntactic order of literals — the
// same order Rebind substitutes in.
type fpWriter struct {
	sb       strings.Builder
	bindings []datum.Datum
	lits     []*Literal
}

func (w *fpWriter) str(s string)   { w.sb.WriteString(s) }
func (w *fpWriter) ident(s string) { w.sb.WriteString(strings.ToLower(s)) }

func (w *fpWriter) lit(l *Literal) {
	w.bindings = append(w.bindings, l.Value)
	w.lits = append(w.lits, l)
	w.str("$" + strconv.Itoa(len(w.bindings)))
}

func (w *fpWriter) stmt(s Statement) {
	switch x := s.(type) {
	case *Select:
		w.selectStmt(x)
	case *Insert:
		w.insertStmt(x)
	case *Update:
		w.updateStmt(x)
	case *Delete:
		w.deleteStmt(x)
	case *CreateTable:
		w.createTableStmt(x)
	case *CreateIndex:
		w.str("CREATE INDEX ")
		w.ident(x.Name)
		w.str(" ON ")
		w.ident(x.Table)
		w.str(" (")
		w.identList(x.Columns)
		w.str(")")
	case *DropIndex:
		w.str("DROP INDEX ")
		w.ident(x.Name)
	case *Explain:
		w.str("EXPLAIN ")
		w.stmt(x.Stmt)
	default:
		// Unknown statement kinds degrade to their String form (still
		// deterministic, just without literal lifting).
		w.str(fmt.Sprintf("%T:%s", s, s.String()))
	}
}

func (w *fpWriter) identList(cols []string) {
	for i, c := range cols {
		if i > 0 {
			w.str(", ")
		}
		w.ident(c)
	}
}

func (w *fpWriter) selectStmt(s *Select) {
	w.str("SELECT ")
	if s.Distinct {
		w.str("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			w.str(", ")
		}
		switch {
		case it.Star:
			w.str("*")
		default:
			w.expr(it.Expr)
			if it.Alias != "" {
				w.str(" AS ")
				w.ident(it.Alias)
			}
		}
	}
	w.str(" FROM ")
	w.tableRef(s.From)
	for _, j := range s.Joins {
		w.str(" JOIN ")
		w.tableRef(j.Right)
		w.str(" ON ")
		w.expr(j.On)
	}
	if s.Where != nil {
		w.str(" WHERE ")
		w.expr(s.Where)
	}
	if len(s.GroupBy) > 0 {
		w.str(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				w.str(", ")
			}
			w.expr(g)
		}
	}
	if len(s.OrderBy) > 0 {
		w.str(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				w.str(", ")
			}
			w.expr(o.Expr)
			if o.Desc {
				w.str(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		// LIMIT is part of the template, not a binding: it changes the
		// plan shape (a Limit node), not just constants inside it.
		w.str(" LIMIT " + strconv.FormatInt(s.Limit, 10))
	}
}

func (w *fpWriter) tableRef(t TableRef) {
	w.ident(t.Table)
	if t.Alias != "" {
		w.str(" ")
		w.ident(t.Alias)
	}
}

func (w *fpWriter) insertStmt(s *Insert) {
	w.str("INSERT INTO ")
	w.ident(s.Table)
	if len(s.Columns) > 0 {
		w.str(" (")
		w.identList(s.Columns)
		w.str(")")
	}
	if s.Query != nil {
		w.str(" ")
		w.selectStmt(s.Query)
		return
	}
	w.str(" VALUES ")
	for r, row := range s.Rows {
		if r > 0 {
			w.str(", ")
		}
		w.str("(")
		for c, e := range row {
			if c > 0 {
				w.str(", ")
			}
			w.expr(e)
		}
		w.str(")")
	}
}

func (w *fpWriter) updateStmt(s *Update) {
	w.str("UPDATE ")
	w.ident(s.Table)
	w.str(" SET ")
	for i, a := range s.Set {
		if i > 0 {
			w.str(", ")
		}
		w.ident(a.Column)
		w.str(" = ")
		w.expr(a.Value)
	}
	if s.Where != nil {
		w.str(" WHERE ")
		w.expr(s.Where)
	}
}

func (w *fpWriter) deleteStmt(s *Delete) {
	w.str("DELETE FROM ")
	w.ident(s.Table)
	if s.Where != nil {
		w.str(" WHERE ")
		w.expr(s.Where)
	}
}

func (w *fpWriter) createTableStmt(s *CreateTable) {
	w.str("CREATE TABLE ")
	w.ident(s.Table)
	w.str(" (")
	for i, c := range s.Columns {
		if i > 0 {
			w.str(", ")
		}
		w.ident(c.Name)
		w.str(" " + c.Kind.String())
	}
	w.str(", PRIMARY KEY (")
	w.identList(s.PrimaryKey)
	w.str("))")
}

func (w *fpWriter) expr(e Expr) {
	switch x := e.(type) {
	case *ColumnRef:
		if x.Table != "" {
			w.ident(x.Table)
			w.str(".")
		}
		w.ident(x.Column)
	case *Literal:
		w.lit(x)
	case *BinaryExpr:
		w.str("(")
		w.expr(x.Left)
		w.str(" " + x.Op + " ")
		w.expr(x.Right)
		w.str(")")
	case *NotExpr:
		w.str("NOT ")
		w.expr(x.Inner)
	case *IsNullExpr:
		w.expr(x.Inner)
		if x.Not {
			w.str(" IS NOT NULL")
		} else {
			w.str(" IS NULL")
		}
	case *LikeExpr:
		// The pattern stays in the template rather than becoming a
		// binding: the compiled matcher (prefilters included) is part of
		// the cached plan, so different patterns must not share a plan.
		w.expr(x.Expr)
		if x.Not {
			w.str(" NOT LIKE ")
		} else {
			w.str(" LIKE ")
		}
		w.str("'" + x.Pattern + "'")
	case *FuncExpr:
		w.str(x.Name + "(")
		if x.Star {
			w.str("*")
		} else {
			w.expr(x.Arg)
		}
		w.str(")")
	case *InSubquery:
		// Subquery literals are lifted too: the inner SELECT is rendered
		// through selectStmt, so its constants become bindings in the same
		// syntactic order Rebind walks them.
		w.expr(x.Left)
		if x.Not {
			w.str(" NOT IN (")
		} else {
			w.str(" IN (")
		}
		w.selectStmt(x.Query)
		w.str(")")
	case *ExistsExpr:
		w.str("EXISTS (")
		w.selectStmt(x.Query)
		w.str(")")
	default:
		w.str(fmt.Sprintf("%T:%s", e, e.String()))
	}
}

// Rebind deep-clones a statement, substituting the i-th literal (in the
// same traversal order FingerprintOf lifts them) with bindings[i]. It is
// the inverse of fingerprinting: Rebind(stmt, FingerprintOf(stmt).Bindings)
// is structurally equal to stmt.
func Rebind(stmt Statement, bindings []datum.Datum) (Statement, error) {
	rb := &rebinder{bindings: bindings}
	out := rb.stmt(stmt)
	if rb.err != nil {
		return nil, rb.err
	}
	if rb.next != len(bindings) {
		return nil, fmt.Errorf("sql: rebind used %d of %d bindings", rb.next, len(bindings))
	}
	return out, nil
}

type rebinder struct {
	bindings []datum.Datum
	next     int
	err      error
}

func (rb *rebinder) take() datum.Datum {
	if rb.next >= len(rb.bindings) {
		if rb.err == nil {
			rb.err = fmt.Errorf("sql: rebind ran out of bindings after %d", rb.next)
		}
		return datum.Null
	}
	v := rb.bindings[rb.next]
	rb.next++
	return v
}

func (rb *rebinder) stmt(s Statement) Statement {
	switch x := s.(type) {
	case *Select:
		return rb.selectStmt(x)
	case *Insert:
		out := &Insert{Table: x.Table, Columns: append([]string(nil), x.Columns...)}
		for _, row := range x.Rows {
			nrow := make([]Expr, len(row))
			for i, e := range row {
				nrow[i] = rb.expr(e)
			}
			out.Rows = append(out.Rows, nrow)
		}
		if x.Query != nil {
			out.Query = rb.selectStmt(x.Query)
		}
		return out
	case *Update:
		out := &Update{Table: x.Table}
		for _, a := range x.Set {
			out.Set = append(out.Set, Assignment{Column: a.Column, Value: rb.expr(a.Value)})
		}
		if x.Where != nil {
			out.Where = rb.expr(x.Where)
		}
		return out
	case *Delete:
		out := &Delete{Table: x.Table}
		if x.Where != nil {
			out.Where = rb.expr(x.Where)
		}
		return out
	case *CreateTable:
		return &CreateTable{Table: x.Table, Columns: append([]ColumnDef(nil), x.Columns...), PrimaryKey: append([]string(nil), x.PrimaryKey...)}
	case *CreateIndex:
		return &CreateIndex{Name: x.Name, Table: x.Table, Columns: append([]string(nil), x.Columns...)}
	case *DropIndex:
		return &DropIndex{Name: x.Name}
	case *Explain:
		return &Explain{Stmt: rb.stmt(x.Stmt)}
	default:
		if rb.err == nil {
			rb.err = fmt.Errorf("sql: rebind: unsupported statement %T", s)
		}
		return s
	}
}

func (rb *rebinder) selectStmt(s *Select) *Select {
	out := &Select{Distinct: s.Distinct, From: s.From, Limit: s.Limit}
	for _, it := range s.Items {
		nit := SelectItem{Alias: it.Alias, Star: it.Star}
		if it.Expr != nil {
			nit.Expr = rb.expr(it.Expr)
		}
		out.Items = append(out.Items, nit)
	}
	for _, j := range s.Joins {
		out.Joins = append(out.Joins, JoinClause{Right: j.Right, On: rb.expr(j.On)})
	}
	if s.Where != nil {
		out.Where = rb.expr(s.Where)
	}
	for _, g := range s.GroupBy {
		out.GroupBy = append(out.GroupBy, rb.expr(g))
	}
	for _, o := range s.OrderBy {
		out.OrderBy = append(out.OrderBy, OrderItem{Expr: rb.expr(o.Expr), Desc: o.Desc})
	}
	return out
}

func (rb *rebinder) expr(e Expr) Expr {
	switch x := e.(type) {
	case *ColumnRef:
		return &ColumnRef{Table: x.Table, Column: x.Column}
	case *Literal:
		return &Literal{Value: rb.take()}
	case *BinaryExpr:
		return &BinaryExpr{Op: x.Op, Left: rb.expr(x.Left), Right: rb.expr(x.Right)}
	case *NotExpr:
		return &NotExpr{Inner: rb.expr(x.Inner)}
	case *IsNullExpr:
		return &IsNullExpr{Inner: rb.expr(x.Inner), Not: x.Not}
	case *LikeExpr:
		return &LikeExpr{Expr: rb.expr(x.Expr), Pattern: x.Pattern, Not: x.Not}
	case *FuncExpr:
		out := &FuncExpr{Name: x.Name, Star: x.Star}
		if x.Arg != nil {
			out.Arg = rb.expr(x.Arg)
		}
		return out
	case *InSubquery:
		return &InSubquery{Left: rb.expr(x.Left), Query: rb.selectStmt(x.Query), Not: x.Not}
	case *ExistsExpr:
		return &ExistsExpr{Query: rb.selectStmt(x.Query)}
	default:
		if rb.err == nil {
			rb.err = fmt.Errorf("sql: rebind: unsupported expression %T", e)
		}
		return e
	}
}

// MapLiterals clones an expression tree, replacing each *Literal with
// fn(lit). Non-literal leaves (column references) are shared; interior
// nodes are copied, so the input tree is never mutated. fn may return
// its argument to keep a literal as-is.
func MapLiterals(e Expr, fn func(*Literal) Expr) Expr {
	switch x := e.(type) {
	case *Literal:
		return fn(x)
	case *ColumnRef:
		return x
	case *BinaryExpr:
		return &BinaryExpr{Op: x.Op, Left: MapLiterals(x.Left, fn), Right: MapLiterals(x.Right, fn)}
	case *NotExpr:
		return &NotExpr{Inner: MapLiterals(x.Inner, fn)}
	case *IsNullExpr:
		return &IsNullExpr{Inner: MapLiterals(x.Inner, fn), Not: x.Not}
	case *LikeExpr:
		return &LikeExpr{Expr: MapLiterals(x.Expr, fn), Pattern: x.Pattern, Not: x.Not}
	case *FuncExpr:
		out := &FuncExpr{Name: x.Name, Star: x.Star}
		if x.Arg != nil {
			out.Arg = MapLiterals(x.Arg, fn)
		}
		return out
	case *InSubquery:
		return &InSubquery{Left: MapLiterals(x.Left, fn), Query: mapLiteralsSelect(x.Query, fn), Not: x.Not}
	case *ExistsExpr:
		return &ExistsExpr{Query: mapLiteralsSelect(x.Query, fn)}
	default:
		return e
	}
}

// mapLiteralsSelect clones a subquery Select, applying MapLiterals to
// every expression position in the same order fpWriter renders them.
func mapLiteralsSelect(s *Select, fn func(*Literal) Expr) *Select {
	out := &Select{Distinct: s.Distinct, From: s.From, Limit: s.Limit}
	for _, it := range s.Items {
		nit := SelectItem{Alias: it.Alias, Star: it.Star}
		if it.Expr != nil {
			nit.Expr = MapLiterals(it.Expr, fn)
		}
		out.Items = append(out.Items, nit)
	}
	for _, j := range s.Joins {
		out.Joins = append(out.Joins, JoinClause{Right: j.Right, On: MapLiterals(j.On, fn)})
	}
	if s.Where != nil {
		out.Where = MapLiterals(s.Where, fn)
	}
	for _, g := range s.GroupBy {
		out.GroupBy = append(out.GroupBy, MapLiterals(g, fn))
	}
	for _, o := range s.OrderBy {
		out.OrderBy = append(out.OrderBy, OrderItem{Expr: MapLiterals(o.Expr, fn), Desc: o.Desc})
	}
	return out
}
