package sql

import (
	"fmt"
	"strings"

	"onlinetuner/internal/datum"
)

// Statement is any parsed SQL statement.
type Statement interface {
	stmt()
	String() string
}

// Expr is any scalar or boolean expression.
type Expr interface {
	expr()
	String() string
}

// ColumnRef references a column, optionally qualified by table or alias.
type ColumnRef struct {
	Table  string // may be empty
	Column string
}

func (*ColumnRef) expr() {}

func (c *ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// Literal is a constant value.
type Literal struct {
	Value datum.Datum
}

func (*Literal) expr() {}

func (l *Literal) String() string { return l.Value.String() }

// BinaryExpr is an arithmetic, comparison or boolean binary operation.
// Op is one of + - * / = <> < <= > >= AND OR.
type BinaryExpr struct {
	Op          string
	Left, Right Expr
}

func (*BinaryExpr) expr() {}

func (b *BinaryExpr) String() string {
	return "(" + b.Left.String() + " " + b.Op + " " + b.Right.String() + ")"
}

// NotExpr negates a boolean expression.
type NotExpr struct {
	Inner Expr
}

func (*NotExpr) expr() {}

func (n *NotExpr) String() string { return "NOT " + n.Inner.String() }

// IsNullExpr tests for NULL (or NOT NULL).
type IsNullExpr struct {
	Inner Expr
	Not   bool
}

func (*IsNullExpr) expr() {}

func (e *IsNullExpr) String() string {
	if e.Not {
		return e.Inner.String() + " IS NOT NULL"
	}
	return e.Inner.String() + " IS NULL"
}

// LikeExpr is a SQL LIKE pattern match. The pattern is restricted to a
// string literal at parse time (no dynamic patterns), which lets the
// executor compile it once — including its literal prefilters — per
// statement. Wildcards: % matches any run, _ matches one byte; no
// escape syntax.
type LikeExpr struct {
	Expr    Expr
	Pattern string
	Not     bool
}

func (*LikeExpr) expr() {}

func (l *LikeExpr) String() string {
	op := " LIKE "
	if l.Not {
		op = " NOT LIKE "
	}
	return l.Expr.String() + op + "'" + l.Pattern + "'"
}

// FuncExpr is an aggregate function application. Star is true for
// COUNT(*).
type FuncExpr struct {
	Name string // COUNT, SUM, AVG, MIN, MAX (upper-case)
	Arg  Expr   // nil when Star
	Star bool
}

func (*FuncExpr) expr() {}

func (f *FuncExpr) String() string {
	if f.Star {
		return f.Name + "(*)"
	}
	return f.Name + "(" + f.Arg.String() + ")"
}

// InSubquery is `expr [NOT] IN (SELECT ...)`. The subquery is a full
// Select; the optimizer's unnesting rule flattens it into a (null-aware,
// for NOT IN) hash semi-join.
type InSubquery struct {
	Left  Expr
	Query *Select
	Not   bool
}

func (*InSubquery) expr() {}

func (i *InSubquery) String() string {
	op := " IN ("
	if i.Not {
		op = " NOT IN ("
	}
	return i.Left.String() + op + i.Query.String() + ")"
}

// ExistsExpr is `EXISTS (SELECT ...)`. NOT EXISTS parses as
// NotExpr{ExistsExpr}. Correlated subqueries reference outer columns in
// their WHERE clause; the optimizer flattens them to semi/anti-joins on
// the correlation equality keys.
type ExistsExpr struct {
	Query *Select
}

func (*ExistsExpr) expr() {}

func (e *ExistsExpr) String() string { return "EXISTS (" + e.Query.String() + ")" }

// SelectItem is one projection in a SELECT list.
type SelectItem struct {
	Expr  Expr
	Alias string // optional
	Star  bool   // SELECT *
}

func (s SelectItem) String() string {
	if s.Star {
		return "*"
	}
	if s.Alias != "" {
		return s.Expr.String() + " AS " + s.Alias
	}
	return s.Expr.String()
}

// TableRef names a base table with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// Name returns the reference name: alias if present, else the table.
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

func (t TableRef) String() string {
	if t.Alias != "" {
		return t.Table + " " + t.Alias
	}
	return t.Table
}

// JoinClause is an explicit INNER JOIN with its ON condition.
type JoinClause struct {
	Right TableRef
	On    Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

func (o OrderItem) String() string {
	if o.Desc {
		return o.Expr.String() + " DESC"
	}
	return o.Expr.String()
}

// Select is a SELECT statement. FROM is a first table plus zero or more
// explicit joins; comma-separated FROM lists are normalized into joins
// with the join predicate left in WHERE.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     TableRef
	Joins    []JoinClause
	Where    Expr // nil if absent
	GroupBy  []Expr
	OrderBy  []OrderItem
	Limit    int64 // -1 if absent
}

func (*Select) stmt() {}

func (s *Select) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(it.String())
	}
	sb.WriteString(" FROM ")
	sb.WriteString(s.From.String())
	for _, j := range s.Joins {
		sb.WriteString(" JOIN " + j.Right.String() + " ON " + j.On.String())
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.String())
		}
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.String())
		}
	}
	if s.Limit >= 0 {
		sb.WriteString(fmt.Sprintf(" LIMIT %d", s.Limit))
	}
	return sb.String()
}

// Insert is INSERT INTO ... VALUES or INSERT INTO ... SELECT.
type Insert struct {
	Table   string
	Columns []string // optional explicit column list
	Rows    [][]Expr // literal rows; nil when Query is set
	Query   *Select  // INSERT ... SELECT
}

func (*Insert) stmt() {}

func (i *Insert) String() string {
	s := "INSERT INTO " + i.Table
	if len(i.Columns) > 0 {
		s += " (" + strings.Join(i.Columns, ", ") + ")"
	}
	if i.Query != nil {
		return s + " " + i.Query.String()
	}
	s += " VALUES "
	for r, row := range i.Rows {
		if r > 0 {
			s += ", "
		}
		s += "("
		for c, e := range row {
			if c > 0 {
				s += ", "
			}
			s += e.String()
		}
		s += ")"
	}
	return s
}

// Assignment is one SET clause of an UPDATE.
type Assignment struct {
	Column string
	Value  Expr
}

// Update is an UPDATE statement.
type Update struct {
	Table string
	Set   []Assignment
	Where Expr
}

func (*Update) stmt() {}

func (u *Update) String() string {
	s := "UPDATE " + u.Table + " SET "
	for i, a := range u.Set {
		if i > 0 {
			s += ", "
		}
		s += a.Column + " = " + a.Value.String()
	}
	if u.Where != nil {
		s += " WHERE " + u.Where.String()
	}
	return s
}

// Delete is a DELETE statement.
type Delete struct {
	Table string
	Where Expr
}

func (*Delete) stmt() {}

func (d *Delete) String() string {
	s := "DELETE FROM " + d.Table
	if d.Where != nil {
		s += " WHERE " + d.Where.String()
	}
	return s
}

// ColumnDef is one column of a CREATE TABLE.
type ColumnDef struct {
	Name string
	Kind datum.Kind
}

// CreateTable is a CREATE TABLE statement.
type CreateTable struct {
	Table      string
	Columns    []ColumnDef
	PrimaryKey []string
}

func (*CreateTable) stmt() {}

func (c *CreateTable) String() string {
	var parts []string
	for _, col := range c.Columns {
		parts = append(parts, col.Name+" "+col.Kind.String())
	}
	parts = append(parts, "PRIMARY KEY ("+strings.Join(c.PrimaryKey, ", ")+")")
	return "CREATE TABLE " + c.Table + " (" + strings.Join(parts, ", ") + ")"
}

// CreateIndex is a CREATE INDEX statement.
type CreateIndex struct {
	Name    string
	Table   string
	Columns []string
}

func (*CreateIndex) stmt() {}

func (c *CreateIndex) String() string {
	return "CREATE INDEX " + c.Name + " ON " + c.Table + " (" + strings.Join(c.Columns, ", ") + ")"
}

// DropIndex is a DROP INDEX statement.
type DropIndex struct {
	Name string
}

func (*DropIndex) stmt() {}

func (d *DropIndex) String() string { return "DROP INDEX " + d.Name }

// Explain wraps a statement whose physical plan should be rendered
// instead of executed.
type Explain struct {
	Stmt Statement
}

func (*Explain) stmt() {}

func (e *Explain) String() string { return "EXPLAIN " + e.Stmt.String() }
