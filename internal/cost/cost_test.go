package cost

import (
	"testing"
	"testing/quick"
)

func TestScanCostsGrowWithSize(t *testing.T) {
	m := DefaultModel()
	small := m.HeapScan(10, 1000, 1)
	big := m.HeapScan(100, 10000, 1)
	if big <= small {
		t.Errorf("bigger scan should cost more: %g vs %g", big, small)
	}
	if m.HeapScan(10, 1000, 3) <= m.HeapScan(10, 1000, 1) {
		t.Error("more predicates should cost more")
	}
}

func TestSeekVsScan(t *testing.T) {
	m := DefaultModel()
	// A selective seek must beat a full scan on a large table.
	scan := m.HeapScan(1000, 100000, 1)
	seek := m.IndexSeek(1000, 3, 100)
	if seek >= scan {
		t.Errorf("selective seek (%g) should beat scan (%g)", seek, scan)
	}
	// An unselective "seek" touching all pages should not.
	allSeek := m.IndexSeek(1000, 1000, 100000)
	if allSeek < scan*0.9 {
		t.Errorf("full-range seek (%g) should not massively beat scan (%g)", allSeek, scan)
	}
}

func TestSeeksCap(t *testing.T) {
	m := DefaultModel()
	// Millions of repeated seeks are capped near a sequential pass.
	many := m.Seeks(1e6, 100, 1, 1)
	uncapped := 1e6 * m.IndexSeek(100, 1, 1)
	if many >= uncapped {
		t.Error("seek cap not applied")
	}
	if m.Seeks(0, 100, 1, 1) != 0 {
		t.Error("zero seeks should be free")
	}
	// Monotone in n.
	if m.Seeks(10, 100, 1, 1) > m.Seeks(100, 100, 1, 1) {
		t.Error("Seeks should be monotone in n")
	}
}

func TestRIDLookupsCap(t *testing.T) {
	m := DefaultModel()
	if m.RIDLookups(10, 1000) != 10*m.RandPage {
		t.Error("small lookup count should be linear")
	}
	// Looking up every row should cost at most ~a scan.
	capped := m.RIDLookups(100000, 1000)
	if capped > 1000*m.SeqPage+100000*m.CPUTuple+1 {
		t.Errorf("RID lookup cap not applied: %g", capped)
	}
}

func TestSortCost(t *testing.T) {
	m := DefaultModel()
	if m.Sort(0) != 0 || m.Sort(1) != 0 {
		t.Error("trivial sorts should be free")
	}
	if m.Sort(1000) <= m.Sort(100) {
		t.Error("sort should grow with rows")
	}
}

func TestBuildIndexSortAsymmetry(t *testing.T) {
	m := DefaultModel()
	withSort := m.BuildIndex(100, 10000, 50, true)
	noSort := m.BuildIndex(100, 10000, 50, false)
	if withSort <= noSort {
		t.Error("sorted build should cost more")
	}
	// The asymmetry should be substantial (paper: 8.96 vs 1.33).
	if withSort/noSort < 1.3 {
		t.Errorf("sort asymmetry too small: %g vs %g", withSort, noSort)
	}
}

func TestRestartCheaperThanBuild(t *testing.T) {
	m := DefaultModel()
	build := m.BuildIndex(100, 10000, 50, true)
	restart := m.RestartIndex(100) // few pending ops
	if restart >= build {
		t.Errorf("restart (%g) should be cheaper than rebuild (%g)", restart, build)
	}
}

func TestNonNegativeQuick(t *testing.T) {
	m := DefaultModel()
	f := func(a, b, c uint16) bool {
		p, r, n := float64(a), float64(b), float64(c)
		return m.HeapScan(p, r, 2) >= 0 &&
			m.IndexSeek(p+1, minf(p, 5), r) >= 0 &&
			m.Seeks(n, p+1, 1, 1) >= 0 &&
			m.RIDLookups(n, p) >= 0 &&
			m.Sort(r) >= 0 &&
			m.HashJoin(r, n) >= 0 &&
			m.BuildIndex(p, r, p/2, true) >= 0 &&
			m.DMLBase(n, p) >= 0 &&
			m.IndexMaintenance(n) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
