// Package cost implements the engine's cost model: a classical page-I/O
// plus CPU model that converts physical operator shapes into estimated
// cost units. The same model is used by the query optimizer (to pick
// plans), the what-if engine (to cost local plan transformations, Section
// 2.2 of the paper), and the online tuner (to value index creations —
// B_I^s — and drops). Absolute units are arbitrary; only relative
// magnitudes drive the algorithms.
package cost

import "math"

// Model holds the tunable cost constants. A zero Model is not valid; use
// DefaultModel.
type Model struct {
	SeqPage  float64 // sequential page read
	RandPage float64 // random page read (seeks, RID lookups)
	CPUTuple float64 // per-tuple processing
	CPUPred  float64 // per-predicate evaluation
	HashTup  float64 // per-tuple hash build/probe overhead
	SortTup  float64 // per-tuple-comparison sort constant
	WritePg  float64 // page write (index build, DML)
	IdxTup   float64 // per-tuple index maintenance (DML)
	WidthTup float64 // per-tuple-per-column materialization width charge
}

// DefaultModel returns the cost constants used throughout the system.
// They are I/O-dominated (CPU an order of magnitude below page costs per
// row), which reproduces the paper's cost structure: vertical-partition
// scans of narrow indexes save real cost against full-table scans, and a
// sorted index build is several times more expensive than a sort-free
// one (the I1 = 1.33 vs I2 = 8.96 asymmetry of Table 1).
func DefaultModel() Model {
	return Model{
		SeqPage:  1.0,
		RandPage: 4.0,
		CPUTuple: 0.002,
		CPUPred:  0.0005,
		HashTup:  0.004,
		SortTup:  0.012,
		WritePg:  2.0,
		IdxTup:   0.15,
		WidthTup: 0.0005,
	}
}

// RowWidth is the cost of materializing rows tuples of cols columns into
// a join input (hash table build, sort run, probe stream copy). It is
// deliberately CPU-scale — far below the page costs — so it rewards
// column pruning without flipping I/O-driven access choices.
func (m Model) RowWidth(rows float64, cols int) float64 {
	if cols <= 0 || rows <= 0 {
		return 0
	}
	return rows * float64(cols) * m.WidthTup
}

// TopN is the cost of keeping the k smallest of rows tuples with a
// bounded heap: one comparison-ish pass with log(k) heap maintenance,
// versus Sort's full rows*log(rows).
func (m Model) TopN(rows, k float64) float64 {
	if rows < 2 {
		return 0
	}
	if k < 2 {
		k = 2
	}
	if k > rows {
		k = rows
	}
	return rows * math.Log2(k) * m.SortTup
}

// HeapScan is the cost of scanning a heap (or clustered index) of the
// given pages, evaluating preds predicates per row.
func (m Model) HeapScan(pages, rows float64, preds int) float64 {
	return pages*m.SeqPage + rows*(m.CPUTuple+float64(preds)*m.CPUPred)
}

// IndexScan is the cost of a full sequential scan of an index structure.
func (m Model) IndexScan(pages, rows float64, preds int) float64 {
	return pages*m.SeqPage + rows*(m.CPUTuple+float64(preds)*m.CPUPred)
}

// btreeHeight approximates the tree traversal depth from page count.
func btreeHeight(pages float64) float64 {
	if pages <= 1 {
		return 1
	}
	return 1 + math.Ceil(math.Log(pages)/math.Log(100))
}

// IndexSeek is the cost of one seek returning matchRows from matchPages
// leaf pages of an index with totalPages.
func (m Model) IndexSeek(totalPages, matchPages, matchRows float64) float64 {
	return btreeHeight(totalPages)*m.RandPage + matchPages*m.SeqPage + matchRows*m.CPUTuple
}

// Seeks is the cost of n index seeks (e.g. an index-nested-loop inner),
// each returning matchRows/matchPages. Repeated seeks benefit from buffer
// locality: the per-seek traversal cost is discounted logarithmically and
// total leaf I/O is capped at reading the whole index sequentially once
// plus CPU.
func (m Model) Seeks(n, totalPages, matchPages, matchRows float64) float64 {
	if n <= 0 {
		return 0
	}
	one := m.IndexSeek(totalPages, matchPages, matchRows)
	total := n * one
	// Cap: n seeks can never cost more than a full scan plus per-probe CPU.
	cap := totalPages*m.SeqPage + n*(btreeHeight(totalPages)*m.RandPage*0.2+matchRows*m.CPUTuple)
	if total > cap {
		return cap
	}
	return total
}

// RIDLookups is the cost of n random lookups into a clustered table of
// tablePages. Locality: when n approaches the page count, the cost is
// capped at a full scan.
func (m Model) RIDLookups(n, tablePages float64) float64 {
	c := n * m.RandPage
	cap := tablePages*m.SeqPage + n*m.CPUTuple
	if c > cap && tablePages > 0 {
		return cap
	}
	return c
}

// Sort is the cost of sorting rows tuples in memory.
func (m Model) Sort(rows float64) float64 {
	if rows < 2 {
		return 0
	}
	return rows * math.Log2(rows) * m.SortTup
}

// HashJoin is the cost of building on buildRows and probing with
// probeRows.
func (m Model) HashJoin(buildRows, probeRows float64) float64 {
	return buildRows*m.HashTup + probeRows*m.HashTup
}

// NestedLoop is the cost of a naive nested-loop join re-scanning the
// inner for every outer row.
func (m Model) NestedLoop(outerRows, innerCost float64) float64 {
	return outerRows * innerCost
}

// MergeJoinExtra is the per-row merge cost once both inputs are sorted.
func (m Model) MergeJoinExtra(leftRows, rightRows float64) float64 {
	return (leftRows + rightRows) * m.CPUTuple
}

// BuildIndex is the creation cost B_I^s: scan the source, optionally sort
// the rows, and write the new structure. The sort term is what makes an
// index that shares its key prefix with an existing index much cheaper to
// build (the paper's I1 = 1.33 vs I2 = 8.96 asymmetry).
func (m Model) BuildIndex(sourcePages, rows, newPages float64, sorted bool) float64 {
	c := sourcePages*m.SeqPage + rows*m.CPUTuple + newPages*m.WritePg
	if sorted {
		c += m.Sort(rows)
	}
	return c
}

// RestartIndex is the cost of restarting a suspended index by replaying
// pendingOps logged changes — generally far cheaper than a rebuild.
func (m Model) RestartIndex(pendingOps float64) float64 {
	return pendingOps * (m.IdxTup + m.CPUTuple)
}

// DMLBase is the base cost of locating and changing rows in the primary
// structure.
func (m Model) DMLBase(rows, tablePages float64) float64 {
	return m.RIDLookups(rows, tablePages) + rows*m.CPUTuple + rows*m.WritePg/100
}

// IndexMaintenance is the cost of maintaining one secondary index for
// rows changed rows. Per row it exceeds the index's per-row bulk-build
// cost: maintenance lands random leaf touches while a build streams —
// the asymmetry that makes dropping an index worthwhile under sustained
// update load (the paper's W3 and Figure 7(c) behavior).
func (m Model) IndexMaintenance(rows float64) float64 {
	return rows * (m.IdxTup + m.RandPage/20)
}
