// Package plan defines the physical plan representation produced by the
// optimizer and consumed by the executor. Every node carries an output
// schema (named columns), an estimated cost and an estimated row count;
// Explain renders the operator tree.
package plan

import (
	"fmt"
	"strings"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/datum"
	"onlinetuner/internal/sql"
)

// ColRef names one output column of a plan node: the table alias it
// originates from (empty for computed columns) and the column name.
type ColRef struct {
	Table  string
	Column string
}

func (c ColRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// Matches reports whether this schema column satisfies a reference with
// optional qualifier.
func (c ColRef) Matches(table, column string) bool {
	if !strings.EqualFold(c.Column, column) {
		return false
	}
	return table == "" || strings.EqualFold(c.Table, table)
}

// Node is a physical plan operator.
type Node interface {
	// Schema returns the output columns.
	Schema() []ColRef
	// EstCost returns the estimated cumulative cost of the subtree.
	EstCost() float64
	// EstRows returns the estimated output cardinality.
	EstRows() float64
	// Children returns input operators.
	Children() []Node
	// Label renders the operator for Explain.
	Label() string
}

// Base carries the estimates shared by all nodes.
type Base struct {
	Cost float64
	Rows float64
	Out  []ColRef
}

// Schema implements Node.
func (b *Base) Schema() []ColRef { return b.Out }

// EstCost implements Node.
func (b *Base) EstCost() float64 { return b.Cost }

// EstRows implements Node.
func (b *Base) EstRows() float64 { return b.Rows }

// SeqScan reads every live row of a table's heap, applying pushed
// predicates. Stop > 0 caps output: the scan halts once that many rows
// have passed its predicates (LIMIT pushed into the access path; only
// legal when no order-sensitive operator sits between scan and limit).
type SeqScan struct {
	Base
	Table string
	Alias string
	Preds []sql.Expr
	Stop  int64
}

func (n *SeqScan) Children() []Node { return nil }

func (n *SeqScan) Label() string {
	return fmt.Sprintf("SeqScan %s%s%s%s", n.Table, aliasSuffix(n.Alias, n.Table), stopSuffix(n.Stop), predSuffix(n.Preds))
}

// IndexScan sequentially reads a covering secondary index, applying
// pushed predicates. Its schema is the index's columns only.
type IndexScan struct {
	Base
	Index *catalog.Index
	Alias string
	Preds []sql.Expr
	Stop  int64 // see SeqScan.Stop
}

func (n *IndexScan) Children() []Node { return nil }

func (n *IndexScan) Label() string {
	return fmt.Sprintf("IndexScan %s on %s%s%s%s", n.Index.Name, n.Index.Table,
		aliasSuffix(n.Alias, n.Index.Table), stopSuffix(n.Stop), predSuffix(n.Preds))
}

// IndexSeek performs a single range/equality seek with constant bounds.
// EqVals bind the leading EqCols of the index; Lo/Hi optionally bound the
// next column. When Fetch is true the matching RIDs are looked up in the
// heap and the schema is the full table row; otherwise the schema is the
// index columns (covering plan).
type IndexSeek struct {
	Base
	Index  *catalog.Index
	Alias  string
	EqVals []datum.Datum
	Lo, Hi *datum.Datum
	LoInc  bool
	HiInc  bool
	Fetch  bool
	Preds  []sql.Expr // residual predicates evaluated after the seek
	Stop   int64      // see SeqScan.Stop

	// Literal provenance for plan-cache rebinding: the statement literals
	// each seek bound was copied from (nil entries mean the bound did not
	// come from a single statement literal and cannot be re-substituted).
	EqLits []*sql.Literal
	LoLit  *sql.Literal
	HiLit  *sql.Literal
}

func (n *IndexSeek) Children() []Node { return nil }

func (n *IndexSeek) Label() string {
	bound := fmt.Sprintf("eq=%d", len(n.EqVals))
	if n.Lo != nil || n.Hi != nil {
		bound += ",range"
	}
	mode := "covering"
	if n.Fetch {
		mode = "fetch"
	}
	return fmt.Sprintf("IndexSeek %s on %s%s (%s, %s)%s%s", n.Index.Name, n.Index.Table,
		aliasSuffix(n.Alias, n.Index.Table), bound, mode, stopSuffix(n.Stop), predSuffix(n.Preds))
}

// IndexEndpoint answers MIN/MAX over an index column with at most two
// single seeks: the smallest non-NULL entry after the equality prefix
// (WantMin) and/or the largest entry (WantMax). It emits at most two
// full heap rows — deduplicated when both endpoints are the same row —
// and an unchanged HashAgg above reduces them to the aggregate answer,
// so the zero-rows → NULL semantics stay exactly the aggregate's own.
type IndexEndpoint struct {
	Base
	Index   *catalog.Index
	Alias   string
	Col     string        // the MIN/MAX column (next index column after EqVals)
	EqVals  []datum.Datum // equality prefix bindings, in index column order
	WantMin bool
	WantMax bool

	EqLits []*sql.Literal // literal provenance (see IndexSeek)
}

func (n *IndexEndpoint) Children() []Node { return nil }

func (n *IndexEndpoint) Label() string {
	var ends []string
	if n.WantMin {
		ends = append(ends, "min")
	}
	if n.WantMax {
		ends = append(ends, "max")
	}
	return fmt.Sprintf("IndexEndpoint %s on %s%s (%s(%s), eq=%d)", n.Index.Name, n.Index.Table,
		aliasSuffix(n.Alias, n.Index.Table), strings.Join(ends, "+"), n.Col, len(n.EqVals))
}

// Filter applies residual predicates.
type Filter struct {
	Base
	Child Node
	Preds []sql.Expr
}

func (n *Filter) Children() []Node { return []Node{n.Child} }

func (n *Filter) Label() string { return "Filter" + predSuffix(n.Preds) }

// Project computes the final select list.
type Project struct {
	Base
	Child Node
	Exprs []sql.Expr
	Names []string
}

func (n *Project) Children() []Node { return []Node{n.Child} }

func (n *Project) Label() string {
	parts := make([]string, len(n.Exprs))
	for i, e := range n.Exprs {
		parts[i] = e.String()
	}
	return "Project [" + strings.Join(parts, ", ") + "]"
}

// SortKey is one ordering key for Sort.
type SortKey struct {
	Expr sql.Expr
	Desc bool
}

// Sort orders its input.
type Sort struct {
	Base
	Child Node
	Keys  []SortKey
}

func (n *Sort) Children() []Node { return []Node{n.Child} }

func (n *Sort) Label() string {
	parts := make([]string, len(n.Keys))
	for i, k := range n.Keys {
		parts[i] = k.Expr.String()
		if k.Desc {
			parts[i] += " DESC"
		}
	}
	return "Sort [" + strings.Join(parts, ", ") + "]"
}

// Limit caps output rows.
type Limit struct {
	Base
	Child Node
	N     int64
}

func (n *Limit) Children() []Node { return []Node{n.Child} }

func (n *Limit) Label() string { return fmt.Sprintf("Limit %d", n.N) }

// TopN replaces Sort+Limit: it keeps only the N smallest rows under Keys
// (with the input ordinal as final tiebreak, making it exactly equal to
// a stable full sort truncated to N) using a bounded heap instead of a
// full materialize-and-sort.
type TopN struct {
	Base
	Child Node
	Keys  []SortKey
	N     int64
}

func (n *TopN) Children() []Node { return []Node{n.Child} }

func (n *TopN) Label() string {
	parts := make([]string, len(n.Keys))
	for i, k := range n.Keys {
		parts[i] = k.Expr.String()
		if k.Desc {
			parts[i] += " DESC"
		}
	}
	return fmt.Sprintf("TopN %d [%s]", n.N, strings.Join(parts, ", "))
}

// Distinct removes duplicate rows.
type Distinct struct {
	Base
	Child Node
}

func (n *Distinct) Children() []Node { return []Node{n.Child} }

func (n *Distinct) Label() string { return "Distinct" }

// HashJoin is an equi-join: build on Right, probe with Left.
type HashJoin struct {
	Base
	Left, Right Node
	LeftKeys    []sql.Expr
	RightKeys   []sql.Expr
}

func (n *HashJoin) Children() []Node { return []Node{n.Left, n.Right} }

func (n *HashJoin) Label() string {
	parts := make([]string, len(n.LeftKeys))
	for i := range n.LeftKeys {
		parts[i] = n.LeftKeys[i].String() + "=" + n.RightKeys[i].String()
	}
	return "HashJoin [" + strings.Join(parts, ", ") + "]"
}

// HashSemiJoin emits each Left row at most once depending on whether its
// key exists in the Right-side build set: semi (exists) or, when Anti,
// anti (not exists). NullAware selects NOT IN semantics for the anti
// form: any NULL in the build set suppresses all output, and a NULL
// probe key passes only when the build set is empty. Without NullAware,
// NULL probe keys simply never match (IN / EXISTS / NOT EXISTS treat
// them as non-matching).
type HashSemiJoin struct {
	Base
	Left, Right Node
	LeftKeys    []sql.Expr
	RightKeys   []sql.Expr
	Anti        bool
	NullAware   bool
}

func (n *HashSemiJoin) Children() []Node { return []Node{n.Left, n.Right} }

func (n *HashSemiJoin) Label() string {
	parts := make([]string, len(n.LeftKeys))
	for i := range n.LeftKeys {
		parts[i] = n.LeftKeys[i].String() + "=" + n.RightKeys[i].String()
	}
	kind := "HashSemiJoin"
	if n.Anti {
		kind = "HashAntiJoin"
	}
	if n.NullAware {
		kind += " null-aware"
	}
	return kind + " [" + strings.Join(parts, ", ") + "]"
}

// INLJoin is an index-nested-loop join: for each outer row, seek the
// inner index with key values computed from the outer row.
type INLJoin struct {
	Base
	Outer     Node
	Index     *catalog.Index
	Alias     string // inner table alias
	OuterKeys []sql.Expr
	Fetch     bool // inner rows fetched from heap (index not covering)
	Preds     []sql.Expr
}

func (n *INLJoin) Children() []Node { return []Node{n.Outer} }

func (n *INLJoin) Label() string {
	parts := make([]string, len(n.OuterKeys))
	for i, e := range n.OuterKeys {
		parts[i] = e.String()
	}
	return fmt.Sprintf("INLJoin inner=%s on %s [%s]%s", n.Index.Name, n.Index.Table,
		strings.Join(parts, ", "), predSuffix(n.Preds))
}

// MergeJoin is a sort-merge equi-join: both inputs are brought into join
// key order (the executor sorts a side whose order is not already
// guaranteed) and merged with group-wise matching.
type MergeJoin struct {
	Base
	Left, Right Node
	LeftKeys    []sql.Expr
	RightKeys   []sql.Expr
	// LeftSorted/RightSorted record which inputs the optimizer proved
	// already ordered by the join keys (their sort is free in the cost
	// model; the executor still normalizes defensively).
	LeftSorted  bool
	RightSorted bool
}

func (n *MergeJoin) Children() []Node { return []Node{n.Left, n.Right} }

func (n *MergeJoin) Label() string {
	parts := make([]string, len(n.LeftKeys))
	for i := range n.LeftKeys {
		parts[i] = n.LeftKeys[i].String() + "=" + n.RightKeys[i].String()
	}
	return "MergeJoin [" + strings.Join(parts, ", ") + "]"
}

// CrossJoin is the fallback product join (used when no equi-key exists).
type CrossJoin struct {
	Base
	Left, Right Node
}

func (n *CrossJoin) Children() []Node { return []Node{n.Left, n.Right} }

func (n *CrossJoin) Label() string { return "CrossJoin" }

// AggSpec describes one aggregate output.
type AggSpec struct {
	Func string // COUNT, SUM, AVG, MIN, MAX
	Arg  sql.Expr
	Star bool
	Name string
}

// HashAgg groups and aggregates.
type HashAgg struct {
	Base
	Child   Node
	GroupBy []sql.Expr
	Aggs    []AggSpec
}

func (n *HashAgg) Children() []Node { return []Node{n.Child} }

func (n *HashAgg) Label() string {
	parts := make([]string, len(n.Aggs))
	for i, a := range n.Aggs {
		if a.Star {
			parts[i] = a.Func + "(*)"
		} else {
			parts[i] = a.Func + "(" + a.Arg.String() + ")"
		}
	}
	return fmt.Sprintf("HashAgg groups=%d [%s]", len(n.GroupBy), strings.Join(parts, ", "))
}

// InsertNode applies literal rows or a source subplan to a table.
type InsertNode struct {
	Base
	Table    string
	Literals []datum.Row // pre-evaluated literal rows
	Source   Node        // INSERT ... SELECT
}

func (n *InsertNode) Children() []Node {
	if n.Source != nil {
		return []Node{n.Source}
	}
	return nil
}

func (n *InsertNode) Label() string { return "Insert " + n.Table }

// UpdateNode rewrites rows produced by Source (which must output the full
// table row plus its RID through the executor's row-id channel).
type UpdateNode struct {
	Base
	Table string
	Set   []sql.Assignment
	Where []sql.Expr
}

func (n *UpdateNode) Children() []Node { return nil }

func (n *UpdateNode) Label() string { return "Update " + n.Table }

// DeleteNode removes rows matching Where.
type DeleteNode struct {
	Base
	Table string
	Where []sql.Expr
}

func (n *DeleteNode) Children() []Node { return nil }

func (n *DeleteNode) Label() string { return "Delete " + n.Table }

func aliasSuffix(alias, table string) string {
	if alias == "" || strings.EqualFold(alias, table) {
		return ""
	}
	return " " + alias
}

func stopSuffix(stop int64) string {
	if stop <= 0 {
		return ""
	}
	return fmt.Sprintf(" stop=%d", stop)
}

func predSuffix(preds []sql.Expr) string {
	if len(preds) == 0 {
		return ""
	}
	parts := make([]string, len(preds))
	for i, p := range preds {
		parts[i] = p.String()
	}
	return " where " + strings.Join(parts, " AND ")
}

// Explain renders the plan tree with costs.
func Explain(n Node) string {
	var sb strings.Builder
	explain(&sb, n, 0)
	return sb.String()
}

func explain(sb *strings.Builder, n Node, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(sb, "%s (cost=%.2f rows=%.0f)\n", n.Label(), n.EstCost(), n.EstRows())
	for _, c := range n.Children() {
		explain(sb, c, depth+1)
	}
}

// TableSchema builds the full-row schema of a table under an alias.
func TableSchema(t *catalog.Table, alias string) []ColRef {
	if alias == "" {
		alias = t.Name
	}
	out := make([]ColRef, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = ColRef{Table: alias, Column: c.Name}
	}
	return out
}

// IndexSchema builds the schema of a covering index access under an
// alias.
func IndexSchema(ix *catalog.Index, alias string) []ColRef {
	if alias == "" {
		alias = ix.Table
	}
	out := make([]ColRef, len(ix.Columns))
	for i, c := range ix.Columns {
		out[i] = ColRef{Table: alias, Column: c}
	}
	return out
}
