package plan

import (
	"strings"
	"testing"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/datum"
	"onlinetuner/internal/sql"
)

func testTable(t *testing.T) *catalog.Table {
	t.Helper()
	tbl, err := catalog.NewTable("R", []catalog.Column{
		{Name: "id", Kind: datum.KInt},
		{Name: "a", Kind: datum.KInt},
		{Name: "b", Kind: datum.KInt},
	}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestColRefMatches(t *testing.T) {
	c := ColRef{Table: "R", Column: "a"}
	if !c.Matches("", "a") || !c.Matches("r", "A") {
		t.Error("case-insensitive match failed")
	}
	if c.Matches("S", "a") || c.Matches("R", "b") {
		t.Error("false match")
	}
	if c.String() != "R.a" {
		t.Errorf("String = %s", c.String())
	}
	if (ColRef{Column: "x"}).String() != "x" {
		t.Error("unqualified String")
	}
}

func TestSchemas(t *testing.T) {
	tbl := testTable(t)
	ts := TableSchema(tbl, "r1")
	if len(ts) != 3 || ts[0].Table != "r1" || ts[2].Column != "b" {
		t.Errorf("table schema = %v", ts)
	}
	// Default alias is the table name.
	ts2 := TableSchema(tbl, "")
	if ts2[0].Table != "R" {
		t.Errorf("default alias = %v", ts2[0])
	}
	ix := &catalog.Index{Name: "i", Table: "R", Columns: []string{"a", "id"}}
	is := IndexSchema(ix, "")
	if len(is) != 2 || is[0].Column != "a" || is[0].Table != "R" {
		t.Errorf("index schema = %v", is)
	}
}

func TestExplainTree(t *testing.T) {
	tbl := testTable(t)
	scan := &SeqScan{Table: "R", Alias: "R"}
	scan.Out = TableSchema(tbl, "")
	scan.Cost, scan.Rows = 10, 100
	f := &Filter{Child: scan, Preds: []sql.Expr{&sql.BinaryExpr{
		Op: "<", Left: &sql.ColumnRef{Column: "a"}, Right: &sql.Literal{Value: datum.NewInt(5)},
	}}}
	f.Out = scan.Out
	f.Cost, f.Rows = 11, 50
	lim := &Limit{Child: f, N: 7}
	lim.Out = f.Out
	out := Explain(lim)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("explain lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Limit 7") {
		t.Errorf("root = %q", lines[0])
	}
	if !strings.Contains(lines[1], "Filter") || !strings.Contains(lines[1], "(a < 5)") {
		t.Errorf("filter line = %q", lines[1])
	}
	if !strings.Contains(lines[2], "SeqScan R") || !strings.Contains(lines[2], "rows=100") {
		t.Errorf("scan line = %q", lines[2])
	}
	// Indentation encodes depth.
	if !strings.HasPrefix(lines[2], "    ") {
		t.Error("leaf not indented")
	}
}

func TestLabels(t *testing.T) {
	ix := &catalog.Index{Name: "I2", Table: "R", Columns: []string{"a", "b"}}
	lo := datum.NewInt(1)
	seek := &IndexSeek{Index: ix, EqVals: []datum.Datum{datum.NewInt(5)}, Lo: &lo, Fetch: true}
	if l := seek.Label(); !strings.Contains(l, "IndexSeek I2") || !strings.Contains(l, "range") || !strings.Contains(l, "fetch") {
		t.Errorf("seek label = %q", l)
	}
	cover := &IndexSeek{Index: ix}
	if l := cover.Label(); !strings.Contains(l, "covering") {
		t.Errorf("covering label = %q", l)
	}
	hj := &HashJoin{
		LeftKeys:  []sql.Expr{&sql.ColumnRef{Table: "l", Column: "a"}},
		RightKeys: []sql.Expr{&sql.ColumnRef{Table: "r", Column: "x"}},
	}
	if l := hj.Label(); !strings.Contains(l, "l.a=r.x") {
		t.Errorf("hash join label = %q", l)
	}
	inlj := &INLJoin{Index: ix, OuterKeys: []sql.Expr{&sql.ColumnRef{Column: "k"}}}
	if l := inlj.Label(); !strings.Contains(l, "INLJoin inner=I2") {
		t.Errorf("inlj label = %q", l)
	}
	agg := &HashAgg{GroupBy: []sql.Expr{&sql.ColumnRef{Column: "g"}},
		Aggs: []AggSpec{{Func: "COUNT", Star: true}, {Func: "SUM", Arg: &sql.ColumnRef{Column: "v"}}}}
	if l := agg.Label(); !strings.Contains(l, "COUNT(*)") || !strings.Contains(l, "SUM(v)") {
		t.Errorf("agg label = %q", l)
	}
	for _, n := range []Node{
		&IndexScan{Index: ix}, &Project{Exprs: []sql.Expr{&sql.ColumnRef{Column: "a"}}},
		&Sort{Keys: []SortKey{{Expr: &sql.ColumnRef{Column: "a"}, Desc: true}}},
		&Distinct{}, &CrossJoin{}, &InsertNode{Table: "R"},
		&UpdateNode{Table: "R"}, &DeleteNode{Table: "R"},
	} {
		if n.Label() == "" {
			t.Errorf("%T has empty label", n)
		}
	}
}

func TestChildren(t *testing.T) {
	scan := &SeqScan{}
	if scan.Children() != nil {
		t.Error("scan has children")
	}
	f := &Filter{Child: scan}
	if len(f.Children()) != 1 {
		t.Error("filter child missing")
	}
	hj := &HashJoin{Left: scan, Right: scan}
	if len(hj.Children()) != 2 {
		t.Error("join children missing")
	}
	ins := &InsertNode{}
	if ins.Children() != nil {
		t.Error("literal insert has children")
	}
	ins.Source = scan
	if len(ins.Children()) != 1 {
		t.Error("insert-select child missing")
	}
}

func TestMergeJoinNode(t *testing.T) {
	l := &SeqScan{Table: "L"}
	r := &SeqScan{Table: "R"}
	mj := &MergeJoin{
		Left: l, Right: r,
		LeftKeys:  []sql.Expr{&sql.ColumnRef{Table: "l", Column: "x"}},
		RightKeys: []sql.Expr{&sql.ColumnRef{Table: "r", Column: "x"}},
	}
	if len(mj.Children()) != 2 {
		t.Error("children")
	}
	if want := "MergeJoin [l.x=r.x]"; mj.Label() != want {
		t.Errorf("label = %q, want %q", mj.Label(), want)
	}
}
