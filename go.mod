module onlinetuner

go 1.22
