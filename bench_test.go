// Package repro's top-level benchmarks regenerate each of the paper's
// evaluation artifacts (Table 1, Figures 7(a)–(d), Figure 8, Figure 9)
// as testing.B benchmarks, plus micro-benchmarks for the tuner's
// per-query bookkeeping (the paper's "critical section", lines 1–8 of
// Figure 6) and the what-if primitives.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The benchmark scale is reduced so a full sweep stays in CPU-minutes;
// cmd/experiments regenerates the full-scale artifacts.
package main

import (
	"fmt"
	"testing"

	"onlinetuner/internal/bench"
	"onlinetuner/internal/catalog"
	"onlinetuner/internal/core"
	"onlinetuner/internal/core/singleindex"
	"onlinetuner/internal/engine"
	"onlinetuner/internal/fault"
	"onlinetuner/internal/tpch"
	"onlinetuner/internal/wal"
	"onlinetuner/internal/whatif"
	"onlinetuner/internal/workload"
)

// benchTPCH is the reduced-scale workload configuration used by the
// figure benchmarks.
func benchTPCH() workload.TPCHOptions {
	o := workload.DefaultTPCH()
	o.Scale = 0.2
	o.NumBatches = 6
	o.DisruptCount = 16
	return o
}

// BenchmarkTable1 regenerates Table 1: the five simple-workload
// schedules with online and sequence-optimal costs.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7a regenerates Figure 7(a): OnlinePT per-batch cost on
// the TPC-H batch workload.
func BenchmarkFigure7a(b *testing.B) {
	o := benchTPCH()
	for i := 0; i < b.N; i++ {
		_, series, _, err := bench.Figure7a(o)
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, series)
	}
}

// BenchmarkFigure7b regenerates Figure 7(b): the three techniques on the
// same workload.
func BenchmarkFigure7b(b *testing.B) {
	o := benchTPCH()
	for i := 0; i < b.N; i++ {
		_, series, err := bench.Figure7b(o)
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, series)
	}
}

// BenchmarkFigure7c regenerates Figure 7(c): OnlinePT with the
// disruptive update batch.
func BenchmarkFigure7c(b *testing.B) {
	o := benchTPCH()
	for i := 0; i < b.N; i++ {
		_, series, _, err := bench.Figure7c(o)
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, series)
	}
}

// BenchmarkFigure7d regenerates Figure 7(d): all techniques under the
// disruptive updates.
func BenchmarkFigure7d(b *testing.B) {
	o := benchTPCH()
	for i := 0; i < b.N; i++ {
		_, series, err := bench.Figure7d(o)
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, series)
	}
}

// BenchmarkFigure8 regenerates Figure 8: overall costs across workloads
// and techniques.
func BenchmarkFigure8(b *testing.B) {
	o := benchTPCH()
	o.NumBatches = 3
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure8(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.Totals["OnlinePT"], shorten(r.Workload)+"_online")
			}
		}
	}
}

// BenchmarkFigure9 regenerates Figure 9: OnlinePT per-module overhead.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data, err := bench.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for name, rows := range data {
				for _, r := range rows {
					if r.Module == "Total" {
						b.ReportMetric(float64(r.Duration.Microseconds()), shorten(name)+"_us_per_query")
					}
				}
			}
		}
	}
}

func reportSeries(b *testing.B, series []bench.Series) {
	b.Helper()
	for _, s := range series {
		b.ReportMetric(s.Total(), shorten(s.Name)+"_cost")
	}
}

func shorten(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		}
		if len(out) >= 12 {
			break
		}
	}
	return string(out)
}

// --- micro-benchmarks -----------------------------------------------

// tunedDB builds a loaded database with an attached tuner and a warm
// request stream.
func tunedDB(b *testing.B) (*engine.DB, *core.Tuner) {
	b.Helper()
	db := engine.Open()
	db.MustExec("CREATE TABLE R (id INT, a INT, b INT, c INT, d INT, e INT, PRIMARY KEY (id))")
	for i := 0; i < 3000; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO R VALUES (%d, %d, %d, %d, %d, %d)", i, i%1000, i, i, i, i))
	}
	if err := db.Analyze("R"); err != nil {
		b.Fatal(err)
	}
	return db, core.Attach(db, core.DefaultOptions())
}

// BenchmarkTunerPerQuery measures the tuner's whole per-query path
// (lines 1–21) including query processing.
func BenchmarkTunerPerQuery(b *testing.B) {
	db, _ := tunedDB(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.Exec("SELECT a, b, c, id FROM R WHERE a < 100"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryNoTuner is the same query without the tuner, isolating
// the overhead.
func BenchmarkQueryNoTuner(b *testing.B) {
	db, _ := tunedDB(b)
	db.SetObserver(nil)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.Exec("SELECT a, b, c, id FROM R WHERE a < 100"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGetCost measures the what-if primitive at the heart of the Δ
// bookkeeping.
func BenchmarkGetCost(b *testing.B) {
	db, _ := tunedDB(b)
	env := db.WhatIfEnv()
	req := &whatif.Request{
		Table: "R", Kind: whatif.KindSeek,
		RangeCol: "a", RangeSel: 0.1,
		Required: []string{"a", "b", "c", "id"},
		Bindings: 1, RowsPerBinding: 300,
		TableRows: 3000, TablePages: env.TablePages("R"),
	}
	config := []*catalog.Index{
		{Name: "i1", Table: "R", Columns: []string{"id", "a", "b", "c"}},
		{Name: "i2", Table: "R", Columns: []string{"a", "b", "c", "id"}},
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = whatif.GetCost(env, req, config)
	}
}

// --- plan-cache hot-path benchmarks ---------------------------------

// hotPathDB loads the TPC-H database the BenchmarkHotPath* family runs
// on, with the plan cache in the requested mode and no tuner attached
// (the cache's effect is isolated from index builds).
func hotPathDB(b *testing.B, mode engine.CacheMode) (*engine.DB, *tpch.Generator) {
	b.Helper()
	db := engine.Open()
	gen := tpch.NewGenerator(0.2, 7)
	if err := gen.Load(db); err != nil {
		b.Fatal(err)
	}
	db.SetPlanCacheMode(mode)
	return db, gen
}

// runHotPath replays stmts round-robin, one statement per op, after one
// warm-up pass that populates the caches. It reports the plan-cache hit
// fraction over the timed statements.
func runHotPath(b *testing.B, db *engine.DB, stmts []string) {
	for _, q := range stmts {
		if _, _, err := db.Exec(q); err != nil {
			b.Fatal(err)
		}
	}
	before := db.PlanCacheStats()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.Exec(stmts[i%len(stmts)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	s := db.PlanCacheStats()
	hits := float64(s.Hits - before.Hits + s.RebindHits - before.RebindHits)
	if n := hits + float64(s.Misses-before.Misses); n > 0 {
		b.ReportMetric(hits/n, "hit_rate")
	}
}

// BenchmarkHotPathUncached replays one fixed-parameter TPC-H batch with
// the plan cache off — the baseline the cached variants are measured
// against.
func BenchmarkHotPathUncached(b *testing.B) {
	db, gen := hotPathDB(b, engine.CacheOff)
	runHotPath(b, db, gen.Batch())
}

// BenchmarkHotPathCached replays the same fixed-parameter batch with
// the default exact-match cache: every timed statement is a statement-
// cache and plan-cache hit.
func BenchmarkHotPathCached(b *testing.B) {
	db, gen := hotPathDB(b, engine.CacheExact)
	runHotPath(b, db, gen.Batch())
}

// BenchmarkHotPathVaryingUncached replays many TPC-H batches with fresh
// query parameters per batch, cache off.
func BenchmarkHotPathVaryingUncached(b *testing.B) {
	db, gen := hotPathDB(b, engine.CacheOff)
	var stmts []string
	for _, batch := range gen.Batches(16) {
		stmts = append(stmts, batch...)
	}
	runHotPath(b, db, stmts)
}

// BenchmarkHotPathVaryingRebind replays the same varying-parameter
// batches in rebind mode: texts differ per batch, so statements are
// parsed fresh, but generic plans are reused with the new literals.
func BenchmarkHotPathVaryingRebind(b *testing.B) {
	db, gen := hotPathDB(b, engine.CacheRebind)
	var stmts []string
	for _, batch := range gen.Batches(16) {
		stmts = append(stmts, batch...)
	}
	runHotPath(b, db, stmts)
}

// seekStmts is a repeated-template point-lookup workload over the TPC-H
// schema: per-statement work is one primary-key seek, so planning
// overhead — what the cache removes — dominates each op. distinct
// controls how many parameterizations cycle (1 = one exact text).
func seekStmts(distinct int) []string {
	out := make([]string, distinct)
	for i := range out {
		out[i] = fmt.Sprintf(
			"SELECT l_quantity, l_extendedprice FROM lineitem WHERE l_orderkey = %d AND l_linenumber = 1",
			1+i*7)
	}
	return out
}

// BenchmarkHotPathSeekUncached is the planning-dominated baseline: the
// same point lookup optimized from scratch on every arrival.
func BenchmarkHotPathSeekUncached(b *testing.B) {
	db, _ := hotPathDB(b, engine.CacheOff)
	runHotPath(b, db, seekStmts(1))
}

// BenchmarkHotPathSeekCached is the same statement through the exact
// cache: parser, fingerprinter and optimizer are all skipped.
func BenchmarkHotPathSeekCached(b *testing.B) {
	db, _ := hotPathDB(b, engine.CacheExact)
	runHotPath(b, db, seekStmts(1))
}

// BenchmarkHotPathSeekRebind cycles many parameterizations of the
// template in rebind mode: each text is an exact hit in the statement
// tier after warm-up, and the plan tier serves every literal from the
// one cached generic plan.
func BenchmarkHotPathSeekRebind(b *testing.B) {
	db, _ := hotPathDB(b, engine.CacheRebind)
	runHotPath(b, db, seekStmts(97))
}

// BenchmarkHotPathSeekDurable is the durability probe on the engine's
// fastest statement: the cached seek on a database opened with
// engine.OpenDurable, a WAL writer installed. Reads never touch the
// log, so this must match BenchmarkHotPathSeekCached — the per-
// statement durability cost on the read hot path is one nil-check in
// the statement-commit epilogue. (The non-durable engine.Open path is
// covered by BenchmarkHotPathSeekCached itself; its budget vs the seed
// is ≤ 1%.)
func BenchmarkHotPathSeekDurable(b *testing.B) {
	db, err := engine.OpenDurable(engine.Config{Dir: b.TempDir(), Sync: wal.SyncNone})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if err := tpch.NewGenerator(0.2, 7).Load(db); err != nil {
		b.Fatal(err)
	}
	db.SetPlanCacheMode(engine.CacheExact)
	runHotPath(b, db, seekStmts(1))
}

// BenchmarkHotPathSeekCachedTraced is the tracing-overhead probe on the
// engine's fastest statement: the cached seek with statement tracing
// enabled at the default sampling stride. The acceptance budget is a
// few percent over BenchmarkHotPathSeekCached.
func BenchmarkHotPathSeekCachedTraced(b *testing.B) {
	db, _ := hotPathDB(b, engine.CacheExact)
	db.Observability().EnableTracing(0, 0)
	runHotPath(b, db, seekStmts(1))
}

// BenchmarkHotPathSeekCachedTracedAll traces every statement (stride
// 1) — the upper bound a dashboard session pays.
func BenchmarkHotPathSeekCachedTracedAll(b *testing.B) {
	db, _ := hotPathDB(b, engine.CacheExact)
	db.Observability().EnableTracing(0, 1)
	runHotPath(b, db, seekStmts(1))
}

// idleFaultInjector plans every injection site at probability zero, so
// the engine takes the fault layer's full bookkeeping path without any
// fault ever firing.
func idleFaultInjector() *fault.Injector {
	inj := fault.New(1)
	for _, site := range []fault.Site{
		fault.PageRead, fault.PageWrite, fault.PageAlloc,
		fault.BTreeSplit, fault.BuildStep, fault.BuildFinish, fault.ExecStmt,
	} {
		inj.Plan(site, fault.Rule{Prob: 0})
	}
	return inj
}

// BenchmarkHotPathSeekCachedFaultDisabled is the fault-layer overhead
// probe on the engine's fastest statement: the cached seek with an
// injector installed but disarmed — the production configuration, where
// every site is a single atomic load. The acceptance budget is ≤ 1%
// over BenchmarkHotPathSeekCached (BENCH_fault.json records the
// measured matrix).
func BenchmarkHotPathSeekCachedFaultDisabled(b *testing.B) {
	db, _ := hotPathDB(b, engine.CacheExact)
	inj := idleFaultInjector()
	db.SetFaults(inj)
	inj.Disarm()
	runHotPath(b, db, seekStmts(1))
}

// BenchmarkHotPathSeekCachedFaultArmedIdle bounds the armed-but-never-
// firing path: every site draws from its seeded schedule and declines.
func BenchmarkHotPathSeekCachedFaultArmedIdle(b *testing.B) {
	db, _ := hotPathDB(b, engine.CacheExact)
	inj := idleFaultInjector()
	db.SetFaults(inj)
	inj.Arm()
	runHotPath(b, db, seekStmts(1))
}

// BenchmarkHotPathCachedTraced replays the fixed-parameter TPC-H batch
// with sampled tracing: execution dominates, so the overhead should be
// indistinguishable from BenchmarkHotPathCached.
func BenchmarkHotPathCachedTraced(b *testing.B) {
	db, gen := hotPathDB(b, engine.CacheExact)
	db.Observability().EnableTracing(0, 0)
	runHotPath(b, db, gen.Batch())
}

// parallelDB loads the TPC-H database the BenchmarkHotPathParallel*
// family runs on with an explicit intra-query worker budget and the
// plan cache off, so every op measures raw execution.
func parallelDB(b *testing.B, workers int) (*engine.DB, *tpch.Generator) {
	b.Helper()
	db := engine.OpenConfig(engine.Config{ExecWorkers: workers})
	gen := tpch.NewGenerator(0.2, 7)
	if err := gen.Load(db); err != nil {
		b.Fatal(err)
	}
	db.SetPlanCacheMode(engine.CacheOff)
	return db, gen
}

// BenchmarkHotPathParallelSeq is the morsel-executor baseline: the
// fixed-parameter TPC-H batch at ExecWorkers=1 (no extra workers — the
// scheduler degrades to a plain sequential loop).
func BenchmarkHotPathParallelSeq(b *testing.B) {
	db, gen := parallelDB(b, 1)
	runHotPath(b, db, gen.Batch())
}

// BenchmarkHotPathParallel4 replays the same batch with four intra-
// query workers. cmd/experiments' exec subcommand records the full
// 1/2/4/8 matrix as BENCH_parallel.json; this pair is the CI smoke.
func BenchmarkHotPathParallel4(b *testing.B) {
	db, gen := parallelDB(b, 4)
	runHotPath(b, db, gen.Batch())
}

// BenchmarkOnlineSI measures the constant-time single-index observer.
func BenchmarkOnlineSI(b *testing.B) {
	on := singleindex.New(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		on.Observe(float64(i%7), float64(i%5))
	}
}

// BenchmarkOptSchedule measures the offline single-index DP.
func BenchmarkOptSchedule(b *testing.B) {
	n := 1000
	c0 := make([]float64, n)
	c1 := make([]float64, n)
	for i := range c0 {
		c0[i] = float64(i % 13)
		c1[i] = float64(i % 7)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := singleindex.OptSchedule(c0, c1, 25); err != nil {
			b.Fatal(err)
		}
	}
}
