// Alerter demonstrates the library's observe-only mode, after the
// paper's companion work ("To Tune or not to Tune?", the alerting
// mechanism whose instrumentation Section 2 reuses): instead of changing
// the physical design, the alerter watches the workload and raises an
// alert — with a guaranteed lower bound on the improvement — once a
// comprehensive tuning session would be worth scheduling. This is the
// deployment mode for shops that want a human in the loop.
package main

import (
	"fmt"

	"onlinetuner/internal/core"
	"onlinetuner/internal/engine"
)

func main() {
	db := engine.Open()
	db.MustExec(`CREATE TABLE tickets (
		id INT, queue INT, priority INT, state VARCHAR(8), owner INT,
		PRIMARY KEY (id))`)
	for i := 0; i < 6000; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO tickets VALUES (%d, %d, %d, '%s', %d)",
			i, i%120, i%4, []string{"open", "done"}[i%2], i%60))
	}
	if err := db.Analyze("tickets"); err != nil {
		panic(err)
	}

	// Alert when a tuning session is guaranteed to save ≥ 15% of the
	// observed workload cost.
	alerter := engine.Observer(core.NewAlerter(db, 0.15))
	db.SetObserver(alerter)
	al := alerter.(*core.Alerter)

	fmt.Println("running the help-desk dashboard workload (observe-only)...")
	for day := 0; day < 8; day++ {
		for i := 0; i < 40; i++ {
			db.MustExec(fmt.Sprintf(
				"SELECT id, priority, owner FROM tickets WHERE queue = %d AND state = 'open'", (day*7+i)%120))
		}
		bound, _ := al.LowerBound()
		fmt.Printf("day %d: observed cost %8.1f, guaranteed improvement so far %8.1f\n",
			day+1, al.ObservedCost(), bound)
	}

	fmt.Println("\nalerts raised:")
	for _, a := range al.Alerts() {
		fmt.Println(" ", a)
	}
	if len(al.Alerts()) > 0 {
		fmt.Println("\nNo index was touched — the alert hands the DBA a concrete candidate")
		fmt.Println("set and a floor on the payoff before anyone schedules a tuning window.")
	}
}
