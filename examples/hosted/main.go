// Hosted reproduces the paper's second motivating scenario: a hosting
// installation running multiple database applications that "come and go,
// and usually exhibit unexpected spikes in their loads", with a shared
// pool of storage for physical design. When tenant A spikes, the online
// tuner builds indexes for A — evicting B's under the shared budget —
// and reverses the decision when the load shifts to B.
package main

import (
	"fmt"
	"strings"

	"onlinetuner/internal/core"
	"onlinetuner/internal/engine"
)

func main() {
	db := engine.Open()
	// Two hosted applications: a storefront and an analytics app.
	db.MustExec(`CREATE TABLE shop_sales (
		id INT, sku INT, region INT, qty INT, price FLOAT,
		PRIMARY KEY (id))`)
	db.MustExec(`CREATE TABLE metrics_events (
		id INT, host INT, kind INT, value FLOAT, ts INT,
		PRIMARY KEY (id))`)
	for i := 0; i < 4000; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO shop_sales VALUES (%d, %d, %d, %d, %d.99)",
			i, i%800, i%12, 1+i%5, 5+i%95))
		db.MustExec(fmt.Sprintf("INSERT INTO metrics_events VALUES (%d, %d, %d, %d.5, %d)",
			i, i%50, i%8, i%1000, i))
	}
	for _, t := range []string{"shop_sales", "metrics_events"} {
		if err := db.Analyze(t); err != nil {
			panic(err)
		}
	}

	// Shared budget: enough for roughly one application's indexes.
	db.Mgr.SetBudget(200_000)
	tuner := core.Attach(db, core.DefaultOptions())

	shopQuery := func(i int) string {
		return fmt.Sprintf("SELECT id, qty, price FROM shop_sales WHERE sku = %d", i%800)
	}
	metricsQuery := func(i int) string {
		return fmt.Sprintf("SELECT host, value FROM metrics_events WHERE kind = %d AND ts > %d",
			i%8, 100+i%500)
	}
	spike := func(name string, q func(int) string, n int) {
		for i := 0; i < n; i++ {
			if _, _, err := db.Exec(q(i)); err != nil {
				panic(err)
			}
		}
		var owned []string
		for _, ix := range db.Configuration() {
			owned = append(owned, ix.String())
		}
		fmt.Printf("%-18s -> config: %s (budget used %d/%d)\n",
			name, strings.Join(owned, ", "), db.Mgr.UsedBytes(), db.Mgr.Budget())
	}

	fmt.Println("phase 1: storefront spike")
	spike("shop spike", shopQuery, 120)
	fmt.Println("phase 2: analytics spike (shop goes quiet)")
	spike("metrics spike", metricsQuery, 250)
	fmt.Println("phase 3: storefront returns")
	spike("shop spike", shopQuery, 250)

	fmt.Println("\ntuner activity:")
	for _, ev := range tuner.Events() {
		fmt.Printf("  q%-5d %s %s\n", ev.AtQuery, ev.Kind, ev.Index)
	}
	fmt.Println("\nThe shared storage follows the load: whichever tenant is hot owns")
	fmt.Println("the index budget, with no DBA deciding when to re-tune.")
}
