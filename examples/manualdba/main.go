// Manualdba demonstrates the Section 3.3 refinements around the core
// algorithm: manual DBA intervention routed through the tuner (so the Δ
// bookkeeping stays consistent), asynchronous index creation with the
// abort-on-update rule, and the statistics trigger that builds
// histograms for promising candidates.
package main

import (
	"fmt"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/core"
	"onlinetuner/internal/engine"
)

func main() {
	db := engine.Open()
	db.MustExec(`CREATE TABLE readings (
		id INT, sensor INT, value FLOAT, quality INT, batch INT,
		PRIMARY KEY (id))`)
	for i := 0; i < 6000; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO readings VALUES (%d, %d, %d.25, %d, %d)",
			i, i%300, i%977, i%4, i/100))
	}
	// Deliberately NO Analyze: the tuner's statistics trigger will build
	// histograms once a candidate shows promise.

	opts := core.DefaultOptions()
	opts.Async = true // build indexes "online", abortable under updates
	tuner := core.Attach(db, opts)

	fmt.Println("=> 1. statistics trigger")
	before := db.Stats.BuildCount()
	for i := 0; i < 30; i++ {
		db.MustExec(fmt.Sprintf("SELECT value FROM readings WHERE sensor = %d", i%300))
	}
	fmt.Printf("   statistics built by the tuner: %d (sensor column: %v)\n",
		db.Stats.BuildCount()-before, db.Stats.Has("readings", "sensor"))

	fmt.Println("=> 2. asynchronous creation")
	for i := 0; i < 120; i++ {
		db.MustExec(fmt.Sprintf("SELECT value FROM readings WHERE sensor = %d", i%300))
	}
	for _, ev := range tuner.Events() {
		fmt.Printf("   q%-5d %s %s\n", ev.AtQuery, ev.Kind, ev.Index)
	}
	fmt.Printf("   configuration: %v\n", db.Configuration())

	fmt.Println("=> 3. manual intervention (through the tuner, so Δ values adjust)")
	manual := &catalog.Index{Name: "dba_quality", Table: "readings", Columns: []string{"quality", "id"}}
	if err := tuner.ManualCreate(manual); err != nil {
		panic(err)
	}
	fmt.Printf("   after manual create: %v\n", db.Configuration())
	// The tuner keeps score on the manual index too: if it never helps
	// and updates arrive, it becomes a dropping candidate like any other.
	for i := 0; i < 60; i++ {
		db.MustExec("UPDATE readings SET value = value + 1 WHERE id >= 0")
	}
	fmt.Printf("   after an update burst: %v\n", db.Configuration())
	for _, ev := range tuner.Events() {
		fmt.Printf("   q%-5d %s %s\n", ev.AtQuery, ev.Kind, ev.Index)
	}

	m := tuner.Metrics()
	fmt.Printf("=> tuner overhead: %v total over %d statements (%.3f ms/stmt)\n",
		m.Total, m.Queries, float64(m.Total.Microseconds())/float64(m.Queries)/1000)
}
