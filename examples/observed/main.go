// Observed: the observability layer end to end. Loads a small TPC-H
// instance, attaches the online tuner, enables statement tracing, and
// replays a few query batches — then shows everything the engine can
// tell you about what just happened:
//
//   - a span tree for a recent statement (parse → lock-wait → optimize
//     → execute → observe, with cache provenance and timings)
//   - EXPLAIN ANALYZE for a query: per-operator estimated vs actual
//     rows, pages touched, and time
//   - the tuner's structured decision log (index, Δ evidence, B_I,
//     reason)
//   - the full metrics snapshot as JSON
//
// With -listen the metrics registry is also served over HTTP:
//
//	go run ./examples/observed -listen :8080 &
//	curl localhost:8080/metrics
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"onlinetuner/internal/core"
	"onlinetuner/internal/engine"
	"onlinetuner/internal/tpch"
)

func main() {
	listen := flag.String("listen", "", "serve the metrics snapshot over HTTP at this address")
	engineMode := flag.String("engine", "auto", "execution engine: auto|row|vector")
	flag.Parse()

	db := engine.OpenConfig(engine.Config{ExecEngine: *engineMode})
	gen := tpch.NewGenerator(0.2, 42)
	if err := gen.Load(db); err != nil {
		fmt.Fprintln(os.Stderr, "load:", err)
		os.Exit(1)
	}
	tuner := core.Attach(db, core.DefaultOptions())

	// Trace every statement into a ring of 64. The default stride (16)
	// is for production-shaped workloads; a demo wants every statement.
	db.Observability().EnableTracing(64, 1)

	fmt.Println("replaying 3 TPC-H batches with the tuner attached...")
	for _, batch := range gen.Batches(3) {
		for _, q := range batch {
			if _, _, err := db.Exec(q); err != nil {
				fmt.Fprintln(os.Stderr, "exec:", err)
				os.Exit(1)
			}
		}
	}

	fmt.Println("\n=== span tree of the most recent statement ===")
	traces := db.Observability().Traces()
	fmt.Print(traces[len(traces)-1])

	fmt.Println("\n=== EXPLAIN ANALYZE ===")
	q6 := gen.Query(6)
	fmt.Println(q6)
	s, err := db.ExplainAnalyzeString(q6)
	if err != nil {
		fmt.Fprintln(os.Stderr, "explain analyze:", err)
		os.Exit(1)
	}
	fmt.Print(s)

	fmt.Println("\n=== tuner decision log ===")
	for _, d := range tuner.Decisions() {
		fmt.Printf("  query %d: %-11s %-28s Δ=%.1f Δmin=%.1f B_I=%.1f reason=%s\n",
			d.AtQuery, d.Kind, d.Index, d.Delta, d.DeltaMin, d.BuildCost, d.Reason)
	}

	fmt.Println("\n=== metrics snapshot ===")
	js, err := db.Observability().Reg.SnapshotJSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, "snapshot:", err)
		os.Exit(1)
	}
	fmt.Println(string(js))

	if *listen != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", db.Observability().Reg.Handler())
		fmt.Printf("serving metrics on http://%s/metrics\n", *listen)
		if err := http.ListenAndServe(*listen, mux); err != nil {
			fmt.Fprintln(os.Stderr, "listen:", err)
			os.Exit(1)
		}
	}
}
