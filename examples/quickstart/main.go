// Quickstart: attach the online tuner to a database, run a repeated
// query, and watch the tuner earn enough evidence to create an index —
// then verify the query got cheaper. This is the smallest end-to-end use
// of the library's public surface (engine.Open + core.Attach).
package main

import (
	"fmt"

	"onlinetuner/internal/core"
	"onlinetuner/internal/engine"
)

func main() {
	db := engine.Open()
	db.MustExec(`CREATE TABLE orders (
		id INT, customer INT, amount FLOAT, status VARCHAR(8),
		PRIMARY KEY (id))`)
	for i := 0; i < 5000; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO orders VALUES (%d, %d, %d.50, '%s')",
			i, i%500, 10+i%90, []string{"open", "closed"}[i%2]))
	}
	if err := db.Analyze("orders"); err != nil {
		panic(err)
	}

	// Attach OnlinePT. From here every executed statement updates the
	// tuner's per-index evidence; physical changes happen automatically.
	tuner := core.Attach(db, core.DefaultOptions())

	query := "SELECT id, amount FROM orders WHERE customer = 42"
	fmt.Println("running the same query 40 times...")
	var first, last float64
	for i := 0; i < 40; i++ {
		_, info, err := db.Exec(query)
		if err != nil {
			panic(err)
		}
		if i == 0 {
			first = info.EstCost
		}
		last = info.EstCost
	}

	fmt.Printf("cost of first execution: %.3f\n", first)
	fmt.Printf("cost of last execution:  %.3f\n", last)
	fmt.Println("physical design changes made by the tuner:")
	for _, ev := range tuner.Events() {
		fmt.Printf("  after query %d: %s %s\n", ev.AtQuery, ev.Kind, ev.Index)
	}
	fmt.Println("final configuration:")
	for _, ix := range db.Configuration() {
		fmt.Printf("  %s\n", ix)
	}
	if last < first/2 {
		fmt.Println("=> the tuner made the hot query at least 2x cheaper, unprompted")
	}
}
