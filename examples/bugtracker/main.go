// Bugtracker reproduces the paper's introductory motivating scenario: a
// bug-tracking system that is browsed (select-heavy) most days, but has
// occasional "bug-bash" days that insert large numbers of bugs
// (update-heavy). A representative-workload offline tool would find no
// globally useful index — query gains are outweighed by bug-bash update
// costs — while the online tuner creates indexes for the browsing phases
// and drops (here: suspends) them for the bashes.
package main

import (
	"fmt"

	"onlinetuner/internal/core"
	"onlinetuner/internal/engine"
)

const bugsPerBash = 400

func main() {
	db := engine.Open()
	db.MustExec(`CREATE TABLE bugs (
		id INT, product INT, severity INT, status VARCHAR(10),
		assignee INT, votes INT,
		PRIMARY KEY (id))`)
	next := 0
	fileBug := func() {
		db.MustExec(fmt.Sprintf("INSERT INTO bugs VALUES (%d, %d, %d, '%s', %d, %d)",
			next, next%40, next%5, []string{"new", "open", "fixed"}[next%3], next%25, next%100))
		next++
	}
	for i := 0; i < 4000; i++ {
		fileBug()
	}
	if err := db.Analyze("bugs"); err != nil {
		panic(err)
	}

	opts := core.DefaultOptions()
	opts.UseSuspend = true // suspended indexes restart cheaply after a bash
	tuner := core.Attach(db, opts)

	browse := func(day, queries int) float64 {
		total := 0.0
		for i := 0; i < queries; i++ {
			_, info, err := db.Exec(fmt.Sprintf(
				"SELECT id, severity, votes FROM bugs WHERE product = %d AND status = 'open'", (day+i)%40))
			if err != nil {
				panic(err)
			}
			total += info.EstCost
		}
		return total
	}
	bash := func() float64 {
		total := 0.0
		for i := 0; i < bugsPerBash; i++ {
			fileBug()
		}
		// Triage sweep: one broad update per bash.
		for i := 0; i < 30; i++ {
			_, info, err := db.Exec("UPDATE bugs SET votes = votes + 1, severity = severity + 0 WHERE id >= 0")
			if err != nil {
				panic(err)
			}
			total += info.EstCost
		}
		return total
	}

	fmt.Println("day  phase    cost      configuration")
	day := 0
	report := func(phase string, cost float64) {
		day++
		fmt.Printf("%3d  %-7s %9.1f  %v\n", day, phase, cost, db.Configuration())
	}
	// A month: browse days with two bug bashes.
	for week := 0; week < 2; week++ {
		for d := 0; d < 5; d++ {
			report("browse", browse(day, 60))
		}
		report("bash", bash())
	}
	for d := 0; d < 5; d++ {
		report("browse", browse(day, 60))
	}

	fmt.Println("\ntuner activity:")
	for _, ev := range tuner.Events() {
		fmt.Printf("  q%-5d %s %s\n", ev.AtQuery, ev.Kind, ev.Index)
	}
	fmt.Println("\nThe browsing phases run with supporting indexes; each bash evicts")
	fmt.Println("them (suspend) and the next browsing phase restarts them cheaply —")
	fmt.Println("a schedule no single static design can match.")
}
